"""SenSmartKernel: boot, load, schedule, and account.

Ties together the pieces: the CPU executes naturalized code natively;
patched sites trap into :class:`~.traps.TrapHandlers`; this class owns
tasks, regions, the scheduler, the stack relocator, and the virtual
timer service, and keeps the statistics the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..avr import ioports
from ..avr.cpu import AvrCpu
from ..avr.memory import Flash
from ..errors import KernelError, OutOfMemory, SimulationError
from ..toolchain.image import TargetImage
from . import costs
from .config import KernelConfig
from .context import TaskContext
from .regions import MemoryRegion, RegionTable
from .relocation import StackRelocator
from .scheduler import RoundRobinScheduler
from .task import Task, TaskState
from .termination import TerminationReason, classify_fault_detail
from .translation import AddressTranslator
from .traps import TrapHandlers


@dataclass
class KernelStats:
    """Run statistics the experiments consume."""

    idle_cycles: int = 0
    kernel_cycles: int = 0
    context_switches: int = 0
    scheduler_checks: int = 0
    relocations: int = 0
    relocation_bytes: int = 0
    terminations: List[str] = field(default_factory=list)
    #: Restart-policy revivals, same "name: reason" rendering as
    #: ``terminations`` (every restart is also logged there first).
    restarts: List[str] = field(default_factory=list)
    #: Software-watchdog terminations (subset of ``terminations``).
    watchdog_fires: int = 0
    #: Kernel panics absorbed by the reboot path (see panic()).
    panics: int = 0
    #: Trap executions by PatchKind (the kernel-side profile).
    trap_counts: Dict = field(default_factory=dict)
    #: Terminations by TerminationReason name — the containment ledger
    #: survivability tables cross-check against (EXIT included, so the
    #: values sum to ``len(terminations)``).
    termination_counts: Dict = field(default_factory=dict)
    #: FAULT terminations by detail class ("oob" / "invalid-insn" /
    #: "other", see :func:`~.termination.classify_fault_detail`): how
    #: many faults were the bounds machinery saying no versus a wild
    #: jump decoding garbage.
    fault_kinds: Dict = field(default_factory=dict)

    def busy_cycles(self, total_cycles: int) -> int:
        return total_cycles - self.idle_cycles

    def utilization(self, total_cycles: int) -> float:
        if total_cycles == 0:
            return 0.0
        return self.busy_cycles(total_cycles) / total_cycles


class SenSmartKernel:
    """One simulated sensor node running SenSmart."""

    def __init__(self, image: TargetImage,
                 config: Optional[KernelConfig] = None,
                 devices=(), block_cache=None):
        """*block_cache* forwards to :class:`~..avr.cpu.AvrCpu`: None
        shares the process-wide superblock cache, False disables it, or
        pass an explicit :class:`~..avr.cpu.SuperblockCache`."""
        self.config = config if config is not None else KernelConfig()
        self.image = image

        flash = Flash()
        image.burn(flash)
        self.cpu = AvrCpu(flash, clock_hz=self.config.clock_hz,
                          fuse=self.config.fuse, block_cache=block_cache,
                          max_block=self.config.max_block_members)
        for device in devices:
            self.cpu.attach_device(device)

        self.translator = AddressTranslator(self.config)
        self.regions = RegionTable(self.config)
        self.scheduler = RoundRobinScheduler(self.config)
        self.trampolines = image.trampolines_by_address
        #: Naturalized site -> proven claim ("heap"/"stack"/"pop") the
        #: JIT tiers may elide guards for.  Populated only under
        #: ``config.elide`` and only from certificates the independent
        #: lint checker re-validated against this node's geometry.
        self.elisions: Dict[int, str] = {}
        if self.config.elide:
            from ..analysis.static.dataflow import validated_elisions
            self.elisions = validated_elisions(image, self.config)
        self.handlers = TrapHandlers(self)
        self.specializer = None
        thunk_factory = self.handlers.thunk_factory
        inline_factory = None
        if self.config.specialize:
            from .specialize import TrapSpecializer
            self.specializer = TrapSpecializer(self)
            thunk_factory = self.specializer.thunk_factory
            inline_factory = self.specializer.inline_source
        self.cpu.set_trap_region(image.trap_region[0], image.trap_region[1],
                                 self.handlers.dispatch,
                                 thunk_factory=thunk_factory,
                                 inline_factory=inline_factory)
        self.tracer = None
        if self.config.trace and self.config.fuse:
            import os

            from ..avr.trace import TraceCompiler, TraceStore
            store_path = self.config.trace_store or \
                os.environ.get("SENSMART_TRACE_STORE")
            store = TraceStore(store_path) if store_path else None
            self.tracer = TraceCompiler(self.cpu, self.specializer,
                                        store=store)
            self.cpu.set_tracer(self.tracer)

        self.tasks: Dict[int, Task] = {}
        self.current: Optional[Task] = None
        self.stats = KernelStats()
        self._booted = False
        self._account_from = 0
        #: True while the node is idle-parked: every task is blocked and
        #: the run budget ended before the earliest wake, so the kernel
        #: left the CPU "sleeping" with the pending virtual-timer events
        #: armed to un-park it (see _dispatch_next / _virtual_timer_fire).
        self._parked = False
        self._parked_from = 0
        #: Set by panic(): the kernel hit an unrecoverable error and
        #: halted; the node layer decides whether to reboot.
        self.panicked = False
        self.panic_reason = ""
        self._watchdog_event = None

        self._load_tasks()
        self.relocator = StackRelocator(
            self.config, self.cpu.mem, self.regions, self._sp_of)
        self.relocator.on_sp_adjust = self._on_sp_adjust
        self.relocator.on_region_change = self._on_region_change

    # -- loading ---------------------------------------------------------------

    def _load_tasks(self) -> None:
        task_ids = list(range(len(self.image.tasks)))
        heap_sizes = [t.heap_size for t in self.image.tasks]
        self.regions.allocate_initial(heap_sizes, task_ids)
        for task_id, task_image in zip(task_ids, self.image.tasks):
            task = Task(task_id=task_id, image=task_image)
            region = self.regions.by_task(task_id)
            task.context.pc = task_image.entry
            task.context.sp = self.translator.initial_sp(region)
            task.branch_counter = self.config.branch_trap_period
            self.tasks[task_id] = task
            self.scheduler.enqueue(task)

    # -- small accessors used by handlers -----------------------------------------

    def region_of_current(self) -> MemoryRegion:
        if self.current is None:
            raise KernelError("no current task")
        return self.regions.by_task(self.current.task_id)

    def _sp_of(self, task_id: int) -> int:
        if self.current is not None and self.current.task_id == task_id:
            return self.cpu.sp
        return self.tasks[task_id].context.sp

    def _on_sp_adjust(self, task_id: int, delta: int) -> None:
        if self.current is not None and self.current.task_id == task_id:
            self.cpu.sp += delta
        else:
            self.tasks[task_id].context.sp += delta

    def _on_region_change(self, task_id: int) -> None:
        """A task's region geometry moved: retire its specialized code.

        Trap code compiled by :class:`~.specialize.TrapSpecializer` bakes
        the region constants in and guards on this epoch, so bumping it
        deoptimizes every stale closure on its next execution.
        """
        task = self.tasks.get(task_id)
        if task is not None:
            task.region_epoch += 1

    def charge(self, cycles: int) -> None:
        """Charge *cycles* to the clock and the kernel-overhead account."""
        self.cpu.cycles += cycles
        self.stats.kernel_cycles += cycles
        if self.current is not None:
            self.current.kernel_cycles += cycles

    # -- virtualized I/O (SP / SREG / Timer3) ----------------------------------------

    def io_read(self, address: int) -> int:
        cpu = self.cpu
        if address == ioports.SPL or address == ioports.SPH:
            region = self.region_of_current()
            logical = self.translator.sp_to_logical(region, cpu.sp)
            return logical & 0xFF if address == ioports.SPL \
                else (logical >> 8) & 0xFF
        if address == ioports.TCNT3L:
            ticks = cpu.cycles // self.config.timer3_prescaler
            self.current._timer_latch_high = (ticks >> 8) & 0xFF
            return ticks & 0xFF
        if address == ioports.TCNT3H:
            return self.current._timer_latch_high
        if address in (ioports.OCR3AL, ioports.OCR3AH, ioports.TCCR3B,
                       ioports.ETIFR):
            return self._virtual_timer_read(address)
        return cpu.data_read(address)

    def io_write(self, address: int, value: int) -> None:
        cpu = self.cpu
        value &= 0xFF
        if address in (ioports.SPL, ioports.SPH):
            # Indirect writes to the SP bytes follow SP-write semantics.
            region = self.region_of_current()
            logical = self.translator.sp_to_logical(region, cpu.sp)
            if address == ioports.SPL:
                logical = (logical & 0xFF00) | value
            else:
                logical = (value << 8) | (logical & 0x00FF)
            cpu.sp = self.translator.sp_to_physical(region, logical)
            return
        if address in ioports.TIMER3_ADDRESSES:
            self._virtual_timer_write(address, value)
            return
        cpu.data_write(address, value)

    # -- virtual timer service ------------------------------------------------------

    def _virtual_timer_read(self, address: int) -> int:
        task = self.current
        if address == ioports.OCR3AL:
            return (task.timer_period_cycles
                    // self.config.timer3_prescaler) & 0xFF
        if address == ioports.OCR3AH:
            return ((task.timer_period_cycles
                     // self.config.timer3_prescaler) >> 8) & 0xFF
        if address == ioports.ETIFR:
            return 1 if task.timer_pending else 0
        return 0

    def _virtual_timer_write(self, address: int, value: int) -> None:
        """ABI: write OCR3AH then OCR3AL; the low write arms a periodic
        virtual timer with the 16-bit tick period."""
        task = self.current
        if address == ioports.OCR3AH:
            task._timer_latch_high = value
            return
        if address == ioports.OCR3AL:
            ticks = (task._timer_latch_high << 8) | value
            task.timer_period_cycles = self.config.ticks_to_cycles(ticks)
            self.cpu.events.cancel(task._timer_event)
            task._timer_event = None
            if task.timer_period_cycles > 0:
                task.timer_next_fire = self.cpu.cycles + \
                    task.timer_period_cycles
                task.timer_pending = 0
                self._arm_virtual_timer(task)
            else:
                task.timer_next_fire = None
            return
        if address == ioports.ETIFR and value:
            task.timer_pending = 0
        # TCCR3B writes are accepted and ignored: virtual timers are
        # always armed by the OCR3A write in this ABI.

    def _arm_virtual_timer(self, task: Task) -> None:
        task._timer_event = self.cpu.events.schedule(
            task.timer_next_fire,
            lambda task=task: self._virtual_timer_fire(task))

    def _virtual_timer_fire(self, task: Task) -> None:
        """A task's periodic virtual timer came due (event callback).

        Fires ride the CPU's event queue, so they land at the exact due
        cycle (at the next instruction/superblock boundary) instead of
        waiting for a scheduler tick.  A fire wakes a blocked task — the
        fire is consumed by the wake-up itself — or accumulates in
        ``timer_pending`` for a running/ready one, then re-arms for the
        next period.
        """
        task._timer_event = None
        if not task.alive or task.timer_next_fire is None:
            return
        task.timer_next_fire += task.timer_period_cycles
        self._arm_virtual_timer(task)
        if task.state is TaskState.BLOCKED:
            task.wake_cycle = None
            self.scheduler.enqueue(task)
            if self._parked:
                self._unpark()
        else:
            task.timer_pending += 1

    # -- stack growth -------------------------------------------------------------------

    def ensure_stack_room(self, need_bytes: int) -> bool:
        """Make sure the current stack can take *need_bytes* more.

        Triggers stack relocation on impending overflow; on failure the
        current task is terminated and False is returned.
        """
        cpu = self.cpu
        region = self.region_of_current()
        task = self.current
        if cpu.sp < task.min_sp_seen:
            task.min_sp_seen = cpu.sp
        depth = region.p_u - 1 - (cpu.sp - need_bytes)
        if depth > task.max_stack_used:
            task.max_stack_used = depth
        floor = region.p_h + self.config.stack_margin
        if cpu.sp - need_bytes + 1 >= floor:
            return True
        if self.config.enable_relocation:
            deficit = floor - (cpu.sp - need_bytes + 1)
            result = self.relocator.grow_stack(self.current.task_id,
                                               deficit)
            if result.moved:
                self.charge(result.cycles)
                self.stats.relocations += 1
                self.stats.relocation_bytes += result.bytes_moved
                self.current.stack_grows += 1
                return True
        self.terminate_task(self.current, TerminationReason.STACK_OVERFLOW)
        return False

    # -- scheduling --------------------------------------------------------------------

    def scheduler_tick(self) -> None:
        """Kernel entry from the 1/256 backward-branch trap."""
        if not self.config.enable_scheduling:
            return  # protection-only configuration (Figure 5 series)
        self.charge(costs.SCHED_CHECK)
        self.stats.scheduler_checks += 1
        task = self.current
        if task is not None and \
                self.scheduler.slice_expired(task, self.cpu.cycles):
            self.preempt()

    def preempt(self) -> None:
        """Put the running task back on the ready queue and switch."""
        task = self.current
        if task is None:
            return
        if len(self.scheduler) == 0:
            # Nobody else to run: renew the slice without a switch.
            task.slice_start_cycle = self.cpu.cycles
            return
        self._account_current()
        task.state = TaskState.READY
        self.scheduler.enqueue(task)
        self.current = None
        self._switch_to(self.scheduler.pick(), charge=costs.FULL_SWITCH)

    def sleep_current(self) -> None:
        """Block the current task until its virtual timer fires."""
        task = self.current
        if task.timer_pending > 0:
            task.timer_pending -= 1
            return  # a period already elapsed; continue immediately
        if task.timer_next_fire is None:
            self.terminate_task(task, TerminationReason.SLEEP_NO_TIMER)
            return
        self._account_current()
        task.state = TaskState.BLOCKED
        task.wake_cycle = task.timer_next_fire
        self.current = None
        self._dispatch_next()

    def terminate_task(self, task: Task, reason: TerminationReason,
                       detail: str = "") -> None:
        """End *task* for *reason*; a restart policy may revive it.

        The reason is structured (:class:`TerminationReason`); the
        human-readable rendering in ``task.exit_reason`` and
        ``KernelStats.terminations`` matches the historical free-form
        strings exactly.
        """
        if task is None or not task.alive:
            return
        text = reason.describe(detail)
        task.state = TaskState.TERMINATED
        self.cpu.events.cancel(task._timer_event)
        task._timer_event = None
        task.timer_next_fire = None
        self.cpu.events.cancel(task._restart_event)
        task._restart_event = None
        task.exit_reason = text
        task.termination = reason
        self.stats.terminations.append(f"{task.name}: {text}")
        counts = self.stats.termination_counts
        counts[reason.name] = counts.get(reason.name, 0) + 1
        if reason is TerminationReason.FAULT:
            kind = classify_fault_detail(detail)
            kinds = self.stats.fault_kinds
            kinds[kind] = kinds.get(kind, 0) + 1
        self.scheduler.remove(task)
        was_current = self.current is task
        if was_current:
            self._account_current()
            self.current = None
        if reason.restartable and self._restart_allowed(task):
            self._restart_task(task)
        elif self.regions.maybe_by_task(task.task_id) is not None:
            grant = self.regions.release(task.task_id)
            self._apply_release_grant(grant)
        if was_current:
            self._dispatch_next()

    # -- restart policies ---------------------------------------------------------

    def _restart_policy_of(self, task: Task) -> str:
        return task.restart_policy if task.restart_policy is not None \
            else self.config.restart_policy

    def _restart_allowed(self, task: Task) -> bool:
        if self._restart_policy_of(task) == "never":
            return False
        cap = task.restart_max if task.restart_max is not None \
            else self.config.restart_max
        return task.restarts_used < cap

    def _restart_task(self, task: Task) -> None:
        """Cold-restart a dead task in place: wipe its region, reset
        its context to the entry point, and requeue it (immediately for
        "restart", after an exponential backoff for
        "restart-with-backoff").  The region geometry is untouched, so
        no neighbour moves and specialized code stays valid."""
        task.restarts_used += 1
        self.stats.restarts.append(f"{task.name}: {task.exit_reason}")
        region = self.regions.by_task(task.task_id)
        data = self.cpu.mem.data
        for address in range(region.p_l, region.p_u):
            data[address] = 0
        task.context = TaskContext()
        task.context.pc = task.image.entry
        task.context.sp = self.translator.initial_sp(region)
        task.branch_counter = self.config.branch_trap_period
        task.timer_period_cycles = 0
        task.timer_pending = 0
        task._timer_latch_high = 0
        task.wake_cycle = None
        self.charge(costs.TASK_RESTART)
        if self._restart_policy_of(task) == "restart-with-backoff":
            slices = self.config.restart_backoff_slices \
                * (1 << (task.restarts_used - 1))
            due = self.cpu.cycles + slices * self.config.time_slice_cycles
            task.state = TaskState.BLOCKED
            task.wake_cycle = due
            task._restart_event = self.cpu.events.schedule(
                due, lambda task=task: self._restart_wake(task))
        else:
            self.scheduler.enqueue(task)

    def _restart_wake(self, task: Task) -> None:
        """Backoff elapsed (event callback): requeue the revived task."""
        task._restart_event = None
        if task.state is not TaskState.BLOCKED:
            return
        task.wake_cycle = None
        self.scheduler.enqueue(task)
        if self._parked:
            self._unpark()

    # -- watchdog -------------------------------------------------------------------

    def _watchdog_period(self) -> int:
        return self.config.watchdog_slices * self.config.time_slice_cycles

    def _arm_watchdog(self) -> None:
        self._watchdog_event = self.cpu.events.schedule(
            self.cpu.cycles + self._watchdog_period(), self._watchdog_fire)

    def _watchdog_fire(self) -> None:
        """Periodic software watchdog (event callback).

        A healthy task renews its slice through the 1/256 backward-
        branch scheduler tick well inside one watchdog period; a task
        still current with a slice older than the whole period has made
        no scheduler progress (trap starvation — e.g. a corrupted
        branch counter) and is faulted.
        """
        self._watchdog_event = None
        task = self.current
        if task is not None and self.cpu.cycles - task.slice_start_cycle \
                >= self._watchdog_period():
            self.stats.watchdog_fires += 1
            self.terminate_task(task, TerminationReason.WATCHDOG)
        if not self.cpu.halted:
            self._arm_watchdog()

    def _apply_release_grant(self, grant) -> None:
        """Physically apply a region release (see ReleaseGrant)."""
        if grant is None:
            return
        self._on_region_change(grant.task_id)
        if grant.heap_move is not None:
            src, dst, length = grant.heap_move
            self.cpu.mem.move_block(src, dst, length)
        if grant.stack_grant is not None:
            # The absorbing region's logical->physical displacement
            # changed with its new p_u: slide its live stack up so
            # logical stack addresses keep resolving to the same bytes.
            task_id, old_p_u, delta = grant.stack_grant
            sp = self._sp_of(task_id)
            used = old_p_u - (sp + 1)
            if used > 0:
                self.cpu.mem.move_block(sp + 1, sp + 1 + delta, used)
            self._on_sp_adjust(task_id, delta)

    def fault_current(self, reason: TerminationReason,
                      detail: str = "") -> None:
        self.terminate_task(self.current, reason, detail)

    def panic(self, detail: str) -> None:
        """Unrecoverable kernel error: halt the node instead of raising.

        Only taken when ``config.panic_reboot`` is on; the node layer
        (SensorNode.run) notices ``panicked`` and cold-restarts through
        ``link_image``.  With the flag off, the error propagates to the
        host exactly as before.
        """
        self.stats.panics += 1
        self.panicked = True
        self.panic_reason = detail
        self.current = None
        self.cpu.halted = True

    def _dispatch_next(self) -> None:
        """Pick the next task; idle (advance time) when all are blocked.

        Idle time rides the event queue: the blocked tasks' virtual
        timers are scheduled events, so idling is a jump to the earliest
        wake followed by ``run_due``.  When the current run's cycle
        budget (``cpu._run_mc``, published by ``AvrCpu.run``) ends
        before the earliest wake, the node *parks*: it consumes the
        remaining budget as idle time and leaves the CPU sleeping with
        the events still armed.  A later run resumes the skip, and the
        eventual virtual-timer fire un-parks and dispatches — this is
        what lets the network co-simulator slice idle periods across
        nodes without busy-spinning anyone.
        """
        cpu = self.cpu
        while True:
            task = self.scheduler.pick()
            if task is not None:
                self._switch_to(task, charge=costs.CONTEXT_RESTORE)
                return
            wake_cycles = [t.wake_cycle for t in self.tasks.values()
                           if t.state is TaskState.BLOCKED
                           and t.wake_cycle is not None]
            if not wake_cycles:
                cpu.halted = True  # no runnable or wakeable task left
                return
            wake = min(wake_cycles)
            budget = cpu._run_mc
            if wake > budget:
                if budget > cpu.cycles:
                    self.stats.idle_cycles += int(budget) - cpu.cycles
                    cpu.cycles = int(budget)
                self._parked = True
                self._parked_from = cpu.cycles
                cpu.sleeping = True
                return
            if wake > cpu.cycles:
                self.stats.idle_cycles += wake - cpu.cycles
                cpu.cycles = wake
            cpu.events.run_due(cpu.cycles)

    def _unpark(self) -> None:
        """Resume from an idle park (called by the waking timer fire).

        The span the CPU slept through since parking is kernel idle
        time; account it, wake the CPU, and dispatch whatever the fire
        just enqueued.
        """
        self._parked = False
        if self.cpu.cycles > self._parked_from:
            self.stats.idle_cycles += self.cpu.cycles - self._parked_from
        self.cpu.sleeping = False
        self._dispatch_next()

    def _switch_to(self, task: Task, charge: int) -> None:
        if self.current is not None:
            self._account_current()
            self.current.context.save_from(self.cpu)
        task.context.restore_to(self.cpu)
        task.state = TaskState.RUNNING
        task.slice_start_cycle = self.cpu.cycles
        task.switches += 1
        self.current = task
        self.stats.context_switches += 1
        self.charge(charge)
        self._account_from = self.cpu.cycles

    def _account_current(self) -> None:
        if self.current is not None:
            self.current.context.save_from(self.cpu)
            self.current.cycles_used += self.cpu.cycles - self._account_from
            self._account_from = self.cpu.cycles

    # -- running ------------------------------------------------------------------------

    def boot(self) -> None:
        if self._booted:
            return
        self._booted = True
        self.charge(costs.SYSTEM_INIT)
        first = self.scheduler.pick()
        if first is None:
            raise KernelError("no tasks to run")
        first.context.restore_to(self.cpu)
        first.state = TaskState.RUNNING
        first.slice_start_cycle = self.cpu.cycles
        self.current = first
        self._account_from = self.cpu.cycles
        if self.config.watchdog_slices > 0:
            self._arm_watchdog()

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None,
            until: Optional[Callable] = None) -> None:
        """Boot (if needed) and run until done or a limit is reached.

        A :class:`SimulationError` escaping the CPU while a task runs
        (undecodable word after flash corruption, a wild physical
        access) is that task's fault: the task is terminated and the
        run continues — isolation holds even for damage the rewriter
        could not have predicted.  Errors with no task to blame are a
        kernel panic: re-raised by default, absorbed into a node reboot
        under ``config.panic_reboot``.
        """
        self.boot()
        while True:
            try:
                self.cpu.run(max_cycles=max_cycles,
                             max_instructions=max_instructions,
                             until=until)
            except SimulationError as error:
                if self.current is not None:
                    self.terminate_task(self.current,
                                        TerminationReason.FAULT,
                                        str(error))
                    if not self.cpu.halted:
                        continue
                elif self.config.panic_reboot:
                    self.panic(str(error))
                else:
                    raise
            except KernelError as error:
                if not self.config.panic_reboot:
                    raise
                self.panic(str(error))
            break
        self._account_current()

    # -- dynamic loading (reprogramming service) --------------------------------------

    @property
    def loader(self):
        """Lazily-created :class:`~.loader.DynamicLoader`."""
        if not hasattr(self, "_loader"):
            from .loader import DynamicLoader
            self._loader = DynamicLoader(self)
        return self._loader

    def load_task(self, name: str, source: str, min_stack: int = None):
        """Install a new application on the running node."""
        return self.loader.load(name, source, min_stack=min_stack)

    def unload_task(self, name: str) -> None:
        """Terminate a task by name and reclaim its memory region."""
        self.loader.unload(name)

    # -- reporting ------------------------------------------------------------------------

    @property
    def alive_tasks(self) -> List[Task]:
        return [t for t in self.tasks.values() if t.alive]

    def snapshot(self) -> Dict:
        """Diagnostic view of the node: tasks, regions, statistics."""
        regions = {
            region.task_id: {
                "p_l": region.p_l, "p_h": region.p_h, "p_u": region.p_u,
                "heap": region.heap_size, "stack": region.stack_size,
            }
            for region in self.regions.regions}
        tasks = {}
        for task in self.tasks.values():
            tasks[task.task_id] = {
                "name": task.name,
                "state": task.state.value,
                "exit_reason": task.exit_reason,
                "pc": self.cpu.pc if task is self.current
                else task.context.pc,
                "sp": self._sp_of(task.task_id)
                if task.task_id in regions else None,
                "cycles_used": task.cycles_used,
                "kernel_cycles": task.kernel_cycles,
                "max_stack_used": task.max_stack_used,
                "region": regions.get(task.task_id),
            }
        return {
            "cycles": self.cpu.cycles,
            "instructions": self.cpu.instret,
            "current": self.current.task_id
            if self.current is not None else None,
            "tasks": tasks,
            "idle_cycles": self.stats.idle_cycles,
            "kernel_cycles": self.stats.kernel_cycles,
            "context_switches": self.stats.context_switches,
            "relocations": self.stats.relocations,
        }

    def features(self) -> Dict[str, bool]:
        """Capability flags cross-checked by the Table I experiment."""
        return {
            "preemptive_multitasking": self.config.enable_scheduling,
            "concurrent_applications": True,
            "interrupt_free_preemption": True,
            "memory_protection": True,
            "logical_memory_address": True,
            "automatic_memory_management": True,
            "stack_relocation": self.config.enable_relocation,
        }
