"""SensorNode: the one-call facade for building and running a node.

Bundles the pipeline — compile, rewrite, link, boot — so examples and
experiments can say::

    node = SensorNode.from_sources([("blink", SRC1), ("sense", SRC2)])
    node.run(max_cycles=10_000_000)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from ..avr.devices import Adc, Leds, Radio, Timer0
from ..rewriter.rewriter import Rewriter
from ..toolchain.linker import link_image
from .config import KernelConfig
from .kernel import SenSmartKernel


class SensorNode:
    """A simulated MICA2-class node running SenSmart."""

    def __init__(self, kernel: SenSmartKernel, devices: dict):
        self.kernel = kernel
        self.devices = devices

    @classmethod
    def from_sources(cls, sources: Sequence[Tuple[str, str]],
                     config: Optional[KernelConfig] = None,
                     rewriter: Optional[Rewriter] = None,
                     adc_seed: int = 0xACE1,
                     fuse: Optional[bool] = None,
                     specialize: Optional[bool] = None,
                     lint: Optional[bool] = None,
                     block_cache=None) -> "SensorNode":
        """Compile, rewrite and link *sources*, then boot a node.

        *fuse* and *specialize* override the config's superblock-fusion
        and trap-specialization knobs (execution stays bit-identical
        either way; both on is fastest).  *lint* overrides the config's
        ``lint_on_link`` self-check.  *block_cache* forwards to the
        kernel's CPU (None = process-wide superblock sharing, False =
        private compilation).
        """
        config = config if config is not None else KernelConfig()
        overrides = {}
        if fuse is not None:
            overrides["fuse"] = fuse
        if specialize is not None:
            overrides["specialize"] = specialize
        if lint is not None:
            overrides["lint_on_link"] = lint
        if overrides:
            config = replace(config, **overrides)
        image = link_image(sources, rewriter=rewriter,
                           lint=config.lint_on_link)
        adc = Adc(seed=adc_seed)
        radio = Radio()
        leds = Leds()
        timer0 = Timer0()  # Timer3 is kernel-owned; Timer0 is for apps
        kernel = SenSmartKernel(image, config=config,
                                devices=[adc, radio, leds, timer0],
                                block_cache=block_cache)
        return cls(kernel, {"adc": adc, "radio": radio, "leds": leds,
                            "timer0": timer0})

    @property
    def cpu(self):
        return self.kernel.cpu

    @property
    def stats(self):
        return self.kernel.stats

    @property
    def adc(self) -> Adc:
        return self.devices["adc"]

    @property
    def radio(self) -> Radio:
        return self.devices["radio"]

    @property
    def leds(self) -> Leds:
        return self.devices["leds"]

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None,
            until=None) -> None:
        self.kernel.run(max_cycles=max_cycles,
                        max_instructions=max_instructions, until=until)

    @property
    def finished(self) -> bool:
        return self.cpu.halted

    def task_named(self, name: str):
        for task in self.kernel.tasks.values():
            if task.name == name:
                return task
        raise KeyError(name)
