"""SensorNode: the one-call facade for building and running a node.

Bundles the pipeline — compile, rewrite, link, boot — so examples and
experiments can say::

    node = SensorNode.from_sources([("blink", SRC1), ("sense", SRC2)])
    node.run(max_cycles=10_000_000)

The node also owns *recovery from total failure*: :meth:`crash` models
a hard fault or injected power glitch (the CPU stops dead), and
:meth:`reboot` cold-restarts the node through ``link_image`` — a fresh
kernel, fresh devices, wiped RAM — while the cycle clock keeps counting
from the crash point, so network co-simulation time stays in one epoch.
A kernel panic (``SenSmartKernel.panicked``) reboots automatically when
``KernelConfig.panic_reboot`` is set.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from ..avr.devices import Adc, Leds, Radio, Timer0
from ..pipeline.pipeline import build_image
from ..rewriter.rewriter import Rewriter
from .config import KernelConfig
from .kernel import SenSmartKernel

#: Cold-start latency charged on a reboot: power-up + bootloader image
#: verification before the kernel's own SYSTEM_INIT (~8 ms at 7.37 MHz).
BOOT_DELAY_CYCLES = 60_000

#: Panic-reboot loops are bounded: a node that panics more often than
#: this in one lifetime stays down (mirrors a real watchdog-reset
#: brown-out lockout).
MAX_PANIC_REBOOTS = 8


class SensorNode:
    """A simulated MICA2-class node running SenSmart."""

    def __init__(self, kernel: SenSmartKernel, devices: dict,
                 sources: Optional[Sequence[Tuple[str, str]]] = None,
                 adc_seed: int = 0xACE1, block_cache=None):
        self.kernel = kernel
        self.devices = devices
        #: Build recipe retained for reboot(); nodes constructed
        #: directly from a kernel (no sources) cannot cold-restart.
        self._sources = list(sources) if sources is not None else None
        self._adc_seed = adc_seed
        self._block_cache = block_cache
        #: True between crash() and reboot() — the node is dark.
        self.crashed = False
        #: Completed cold restarts (crash or panic recovery).
        self.reboots = 0
        #: KernelStats of previous lives (one entry per reboot), so
        #: survivability accounting spans crashes.
        self.stats_history = []

    @classmethod
    def from_sources(cls, sources: Sequence[Tuple[str, str]],
                     config: Optional[KernelConfig] = None,
                     rewriter: Optional[Rewriter] = None,
                     adc_seed: int = 0xACE1,
                     fuse: Optional[bool] = None,
                     specialize: Optional[bool] = None,
                     trace: Optional[bool] = None,
                     elide: Optional[bool] = None,
                     max_block_members: Optional[int] = None,
                     lint: Optional[bool] = None,
                     block_cache=None) -> "SensorNode":
        """Compile, rewrite and link *sources*, then boot a node.

        *fuse*, *specialize* and *trace* override the config's
        superblock-fusion, trap-specialization and trace-chaining knobs
        (execution stays bit-identical either way; all on is fastest);
        *elide* overrides certificate-driven guard elision at proven
        trap sites (also bit-identical).
        *max_block_members* overrides the fusion length cap.  *lint*
        overrides the config's ``lint_on_link`` self-check.
        *block_cache* forwards to the kernel's CPU (None = process-wide
        superblock sharing, False = private compilation).
        """
        config = config if config is not None else KernelConfig()
        overrides = {}
        if fuse is not None:
            overrides["fuse"] = fuse
        if specialize is not None:
            overrides["specialize"] = specialize
        if trace is not None:
            overrides["trace"] = trace
        if elide is not None:
            overrides["elide"] = elide
        if max_block_members is not None:
            overrides["max_block_members"] = max_block_members
        if lint is not None:
            overrides["lint_on_link"] = lint
        if overrides:
            config = replace(config, **overrides)
        image = build_image(sources, rewriter=rewriter,
                            lint=config.lint_on_link)
        node = cls.from_image(image, config=config, adc_seed=adc_seed,
                              block_cache=block_cache)
        node._sources = list(sources)
        return node

    @classmethod
    def from_image(cls, image, config: Optional[KernelConfig] = None,
                   adc_seed: int = 0xACE1,
                   block_cache=None) -> "SensorNode":
        """Boot a node from an already-linked target image.

        Images are immutable once linked, so one image (e.g. from the
        build pipeline's artifact store) can boot any number of nodes;
        a node built this way cannot cold-restart (no sources).
        """
        config = config if config is not None else KernelConfig()
        kernel, devices = cls._build_kernel(image, config, adc_seed,
                                            block_cache)
        return cls(kernel, devices, sources=None, adc_seed=adc_seed,
                   block_cache=block_cache)

    @staticmethod
    def _build_kernel(image, config: KernelConfig, adc_seed: int,
                      block_cache):
        adc = Adc(seed=adc_seed)
        radio = Radio()
        leds = Leds()
        timer0 = Timer0()  # Timer3 is kernel-owned; Timer0 is for apps
        kernel = SenSmartKernel(image, config=config,
                                devices=[adc, radio, leds, timer0],
                                block_cache=block_cache)
        return kernel, {"adc": adc, "radio": radio, "leds": leds,
                        "timer0": timer0}

    @property
    def cpu(self):
        return self.kernel.cpu

    @property
    def stats(self):
        return self.kernel.stats

    @property
    def adc(self) -> Adc:
        return self.devices["adc"]

    @property
    def radio(self) -> Radio:
        return self.devices["radio"]

    @property
    def leds(self) -> Leds:
        return self.devices["leds"]

    # -- crash & cold restart ---------------------------------------------------

    def crash(self) -> None:
        """Hard-stop the node (injected fault / power glitch).

        Everything volatile dies with it: RAM, the event queue (and any
        in-flight RX bytes already scheduled on it), device state.  The
        CPU halts so run loops and the network co-simulator stop
        visiting the node until someone calls :meth:`reboot`.
        """
        self.crashed = True
        self.kernel.cpu.halted = True

    def reboot(self, boot_delay_cycles: int = BOOT_DELAY_CYCLES) -> None:
        """Cold-restart: re-link the image, fresh kernel, same clock.

        The node's cycle counter continues from the crash point plus
        *boot_delay_cycles* — network time is one shared epoch and a
        reboot does not travel back in it.  Flash is re-burned from the
        original sources, so runtime flash corruption does not survive
        a reboot (the bootloader reloads the stored image).
        """
        if self._sources is None:
            raise ValueError(
                "node was not built from sources; cannot cold-restart")
        now = self.cpu.cycles
        config = self.kernel.config
        # Through the process-default image cache: a chaos campaign's
        # Nth reboot of the same image re-links nothing.
        image = build_image(self._sources, lint=config.lint_on_link)
        kernel, devices = self._build_kernel(image, config,
                                             self._adc_seed,
                                             self._block_cache)
        kernel.cpu.cycles = now + boot_delay_cycles
        self.stats_history.append(self.kernel.stats)
        self.kernel = kernel
        self.devices = devices
        self.crashed = False
        self.reboots += 1

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None,
            until=None) -> None:
        while True:
            self.kernel.run(max_cycles=max_cycles,
                            max_instructions=max_instructions,
                            until=until)
            if self.kernel.panicked and self.kernel.config.panic_reboot \
                    and self.reboots < MAX_PANIC_REBOOTS \
                    and self._sources is not None:
                self.reboot()
                if max_cycles is not None and \
                        self.cpu.cycles >= max_cycles:
                    return
                continue
            return

    @property
    def finished(self) -> bool:
        return self.cpu.halted

    def task_named(self, name: str):
        for task in self.kernel.tasks.values():
            if task.name == name:
                return task
        raise KeyError(name)
