"""Dynamic task loading — reprogramming as an OS service.

The paper's Section III-A notes that while *application* code never
modifies itself, "reprogramming can be performed as an OS service".
This module provides that service for the simulated node: a new
application can be compiled, naturalized and installed while the node
runs, and existing tasks' memory regions are compacted to make room —
transparently, thanks to logical addressing.

Flash placement appends the new naturalized program and its trampoline
region after the existing image (internal self-programming time is
charged per page).  RAM placement computes each resident task's true
need (heap + live stack + margin), redistributes the remaining free
space evenly, and physically re-packs the regions — the same move
machinery stack relocation uses, exercised wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import (AssemblerError, EncodingError, LinkError, LoadError,
                      OutOfMemory, RewriteError)
from ..pipeline.stages import naturalize_at
from ..rewriter.rewriter import Rewriter
from ..rewriter.trampoline import TrampolinePool
from ..toolchain.image import TaskImage
from . import costs
from .regions import MemoryRegion
from .task import Task, TaskState
from .termination import TerminationReason

#: Internal flash self-programming: ~4.5 ms per 128-word page at
#: 7.3728 MHz (SPM erase + program).
SPM_PAGE_WORDS = 128
SPM_PAGE_CYCLES = 33_000

#: Bytes of live stack headroom each resident task keeps through a
#: compaction.
COMPACTION_MARGIN = 16


@dataclass
class LoadReport:
    """What installing a task cost."""

    task: Task
    flash_words: int
    flash_cycles: int
    ram_bytes_moved: int
    ram_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.flash_cycles + self.ram_cycles


class DynamicLoader:
    """Installs and removes tasks on a live kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        # First free flash word after the linked image.
        self.flash_cursor = kernel.image.trap_region[1]
        self.rewriter = Rewriter()

    # -- public API -------------------------------------------------------------

    def load(self, name: str, source: str,
             min_stack: Optional[int] = None) -> LoadReport:
        """Compile, naturalize, burn and start *source* as a new task.

        A malformed or truncated *source* raises :class:`LoadError`
        *before* anything is installed: the validation pass is charged
        (a real bootloader walks the whole transfer before deciding),
        but flash, trampolines, the trap-region list and the region map
        are untouched — every running task continues bit-identically.
        """
        kernel = self.kernel
        natural, flash_words = self._install_flash(name, source)
        flash_pages = -(-flash_words // SPM_PAGE_WORDS)
        flash_cycles = flash_pages * SPM_PAGE_CYCLES

        task_id = max(kernel.tasks, default=-1) + 1
        stack_need = min_stack if min_stack is not None \
            else kernel.config.min_stack_size
        moved = self._make_room(task_id, natural.heap_size, stack_need)
        region = kernel.regions.by_task(task_id)

        task = Task(task_id=task_id,
                    image=TaskImage(name=name, natural=natural))
        task.context.pc = natural.entry
        task.context.sp = kernel.translator.initial_sp(region)
        task.branch_counter = kernel.config.branch_trap_period
        kernel.tasks[task_id] = task
        kernel.scheduler.enqueue(task)
        # Loading onto an idle node must revive the scheduler — both
        # the halted case (every prior task exited) and the parked case
        # (all tasks blocked, CPU left "sleeping" between runs; without
        # the unpark the fresh task would sit READY under a sleeping
        # CPU until some timer fired).
        if kernel._parked:
            kernel._unpark()
        elif kernel.current is None:
            kernel.cpu.halted = False
            if kernel._booted:
                kernel._dispatch_next()

        ram_cycles = costs.STACK_RELOCATION + \
            costs.RELOCATION_PER_BYTE * moved
        kernel.charge(flash_cycles + ram_cycles)
        return LoadReport(task=task, flash_words=flash_words,
                          flash_cycles=flash_cycles,
                          ram_bytes_moved=moved, ram_cycles=ram_cycles)

    def unload(self, name: str) -> None:
        """Terminate and reclaim a task by name (flash is not GC'd)."""
        kernel = self.kernel
        for task in kernel.tasks.values():
            if task.name == name and task.alive:
                kernel.terminate_task(task, TerminationReason.UNLOADED)
                return
        raise KeyError(f"no live task named {name!r}")

    # -- flash installation --------------------------------------------------------

    def _install_flash(self, name: str, source: str):
        kernel = self.kernel
        base = self.flash_cursor
        pool = TrampolinePool()
        # Through the pipeline's work functions, so the process-wide
        # stage counters account for dynamic loads exactly like linked
        # images (a warm serve path must show zero of either).
        try:
            natural = naturalize_at(name, source, base, pool,
                                    self.rewriter)
        except (AssemblerError, EncodingError, LinkError,
                RewriteError) as error:
            kernel.charge(costs.LOAD_VALIDATE_BASE
                          + costs.LOAD_VALIDATE_PER_BYTE * len(source))
            raise LoadError(name, str(error)) from error
        trap_lo = base + natural.size_words
        trap_hi = pool.place(trap_lo)
        natural.resolve(pool)

        cpu = kernel.cpu
        cpu.flash.load(base, natural.words)
        cpu.flash.load(trap_lo, [0x9598] * (trap_hi - trap_lo))
        kernel.trampolines.update(pool.by_address())
        cpu.add_trap_region(trap_lo, trap_hi)
        self.flash_cursor = trap_hi
        return natural, trap_hi - base

    # -- RAM compaction ---------------------------------------------------------------

    def _make_room(self, task_id: int, heap_size: int,
                   stack_need: int) -> int:
        """Re-pack regions and append one for the new task.

        Returns bytes physically moved.  Raises OutOfMemory when the
        resident tasks' live needs leave no room.
        """
        kernel = self.kernel
        table = kernel.regions
        regions = table.regions
        config = kernel.config

        needs: List[int] = []
        snapshots = []
        for region in regions:
            sp = kernel._sp_of(region.task_id)
            used_stack = region.p_u - (sp + 1)
            keep_stack = used_stack + COMPACTION_MARGIN
            needs.append(region.heap_size + keep_stack)
            memory = kernel.cpu.mem
            snapshots.append((
                region.task_id,
                region.heap_size,
                bytes(memory.data[region.p_l:region.p_h]),
                bytes(memory.data[sp + 1:region.p_u]),
            ))
        new_need = heap_size + max(stack_need, config.min_stack_size)
        total = table.hi - table.lo
        free = total - sum(needs) - new_need
        if free < 0:
            raise OutOfMemory(
                f"loading needs {new_need} bytes; resident tasks hold "
                f"{sum(needs)} of {total}")
        share = free // (len(regions) + 1)

        moved = 0
        cursor = table.lo
        new_regions: List[MemoryRegion] = []
        for (tid, heap, heap_bytes, stack_bytes), need in \
                zip(snapshots, needs):
            size = need + share
            region = MemoryRegion(task_id=tid, p_l=cursor,
                                  p_h=cursor + heap, p_u=cursor + size)
            memory = kernel.cpu.mem
            memory.data[region.p_l:region.p_h] = heap_bytes
            memory.data[region.p_u - len(stack_bytes):region.p_u] = \
                stack_bytes
            moved += len(heap_bytes) + len(stack_bytes)
            new_sp = region.p_u - 1 - len(stack_bytes)
            self._set_sp(tid, new_sp)
            new_regions.append(region)
            cursor = region.p_u
        # The new task takes everything that remains (the rounding
        # remainder folds into its stack).
        new_region = MemoryRegion(task_id=task_id, p_l=cursor,
                                  p_h=cursor + heap_size, p_u=table.hi)
        new_regions.append(new_region)
        table.regions = new_regions
        table.check_invariants()
        # Every resident region's geometry just changed: retire any trap
        # code specialized against the old constants.
        for region in new_regions:
            kernel._on_region_change(region.task_id)
        return moved

    def _set_sp(self, task_id: int, physical_sp: int) -> None:
        kernel = self.kernel
        if kernel.current is not None and \
                kernel.current.task_id == task_id:
            kernel.cpu.sp = physical_sp
        else:
            kernel.tasks[task_id].context.sp = physical_sp
