"""Kernel configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..avr import ioports


@dataclass(frozen=True)
class KernelConfig:
    """Tunable parameters of the SenSmart kernel.

    Defaults follow the paper: a 7.3728 MHz ATmega128L, 10 ms round-robin
    time slices counted on Timer3, one kernel entry per 256 executed
    backward branches, ~10% of the 4 KB data memory reserved for the
    kernel, and conservative stack relocation.
    """

    #: CPU clock, Hz (MICA2 runs the ATmega128L at 7.3728 MHz).
    clock_hz: int = 7_372_800

    #: Round-robin time slice in CPU cycles (10 ms).
    time_slice_cycles: int = 73_728

    #: One out of this many backward branches enters the kernel
    #: (paper Section IV-B; also a t-kernel technique).
    branch_trap_period: int = 256

    #: Predefined initial stack size per task, bytes (Section IV-C3).
    #: Used when ``divide_stack_equally`` is off; the default policy
    #: divides all available stack space equally at load time, which is
    #: what the initial allocation converges to anyway.
    initial_stack_size: int = 128
    divide_stack_equally: bool = True

    #: Minimum stack a task must receive at load time, bytes.
    min_stack_size: int = 24

    #: Bytes of headroom a stack check requires below the pushed data.
    stack_margin: int = 4

    #: A donor must keep at least this much surplus after donating.
    min_donor_surplus: int = 16

    #: Kernel data-memory footprint, bytes (paper: "about 10% of the
    #: data memory").
    kernel_data_bytes: int = 410

    #: Data memory geometry.
    ram_start: int = ioports.RAM_START
    ram_end: int = ioports.RAM_END

    #: Timer3 prescaler used for the kernel clock and virtual timers.
    timer3_prescaler: int = 8

    #: Enable the stack-relocation machinery (ablation switch).
    enable_relocation: bool = True

    #: Enable preemptive scheduling (off = run tasks to completion,
    #: used by the Figure 5 "memory protection only" configuration).
    enable_scheduling: bool = True

    #: Superblock-fuse the CPU interpreter (see repro.avr.cpu).  Off
    #: forces per-instruction dispatch; results are bit-identical.
    fuse: bool = True

    #: JIT-specialize trap thunks and trap-bearing superblocks against
    #: each task's current region constants (see repro.kernel.specialize).
    #: Off routes every trap through the generic dispatch/translate
    #: chain; results are bit-identical.
    specialize: bool = True

    #: Chain specialized superblocks across direct branches into
    #: multi-block traces (see repro.avr.trace); requires ``fuse``.
    #: Off stops at the per-block tiers; results are bit-identical.
    trace: bool = True

    #: Drop per-access bound guards at trap sites the dataflow engine
    #: proved in-region (see repro.analysis.static.dataflow) — only at
    #: sites whose ElisionCertificate the independent lint checker
    #: re-validates at load time.  Counters, cycle charges and memory
    #: effects are unchanged; results are bit-identical.  Off (the
    #: default) keeps every guard.
    elide: bool = False

    #: Maximum fused instructions per superblock (and per trace node).
    #: Larger blocks amortize more dispatch overhead per straight-line
    #: run at the cost of compile time; 48 covers every hot loop in the
    #: benchmark suite.
    max_block_members: int = 48

    #: Directory for the persistent compiled-trace store; None disables
    #: persistence (the ``SENSMART_TRACE_STORE`` environment variable is
    #: the fallback when unset).
    trace_store: Optional[str] = None

    #: Run the rewriter-soundness linter (``sensmart lint``) over the
    #: image inside ``link_image`` when building a node, so every run is
    #: self-verifying.  Costs well under a millisecond per image.
    lint_on_link: bool = True

    #: Default restart policy for tasks that die abnormally (see
    #: repro.kernel.termination.RESTART_POLICIES); individual tasks can
    #: override via ``Task.restart_policy``.  "never" preserves the
    #: historical behaviour: a dead task stays dead.
    restart_policy: str = "never"

    #: Maximum times a restart policy may revive one task.
    restart_max: int = 3

    #: First restart-with-backoff delay, in time slices; each further
    #: restart doubles it (exponential backoff).
    restart_backoff_slices: int = 2

    #: Software watchdog period in time slices: a task still current
    #: with no slice renewal for this long is faulted (it made no
    #: scheduler progress — e.g. its branch-trap counter was corrupted).
    #: 0 disables the watchdog (the default; arming it schedules extra
    #: events, which healthy runs don't need).
    watchdog_slices: int = 0

    #: On an unrecoverable kernel error (panic), reboot the node
    #: (SensorNode cold-restarts through link_image) instead of raising
    #: into the host.  Off preserves the historical raise.
    panic_reboot: bool = False

    @property
    def memory_size(self) -> int:
        """M — size of the physical data address space."""
        return self.ram_end + 1

    @property
    def app_area(self) -> range:
        """Physical addresses available to application regions."""
        return range(self.ram_start,
                     self.memory_size - self.kernel_data_bytes)

    def ticks_to_cycles(self, ticks: int) -> int:
        return ticks * self.timer3_prescaler

    def ms_to_cycles(self, milliseconds: float) -> int:
        return int(self.clock_hz * milliseconds / 1000.0)
