"""The SenSmart kernel runtime.

Cooperates with the binary rewriter: every patched site in a naturalized
program traps into this runtime, which implements logical addressing,
software-trap preemptive scheduling, and versatile stack management
(paper Section IV).
"""

from .config import KernelConfig
from .kernel import SenSmartKernel
from .node import SensorNode
from .regions import MemoryRegion, RegionTable
from .task import Task, TaskState
from .termination import RESTART_POLICIES, TerminationReason

__all__ = [
    "KernelConfig", "SenSmartKernel", "SensorNode",
    "MemoryRegion", "RegionTable", "Task", "TaskState",
    "TerminationReason", "RESTART_POLICIES",
]
