"""Logical addressing: the core of SenSmart's memory isolation.

Every task sees a logical memory space as large as physical memory
(paper Section IV-C2).  Valid data accesses fall into three classes —
I/O, heap, stack — and translate as:

* I/O (``addr < RAM_START``): identity-mapped and shared; the reserved
  registers (SP, SREG, Timer3) are virtualized separately.
* heap (``RAM_START <= addr < RAM_START + heap_size``): displaced by
  ``p_l``; checked against ``p_h``.
* stack (everything above the heap): displaced by ``p_u - M``; checked
  to fall in ``[p_h, p_u)``.

Out-of-region accesses are treated as invalid instructions and
terminate the task.
"""

from __future__ import annotations

import enum
from typing import Tuple

from ..errors import TaskFault
from .config import KernelConfig
from .regions import MemoryRegion


class AccessClass(enum.Enum):
    IO = "io"
    HEAP = "heap"
    STACK = "stack"


class AddressTranslator:
    """Per-node translation logic parameterized by the kernel config."""

    def __init__(self, config: KernelConfig):
        self.config = config
        self.ram_start = config.ram_start
        self.memory_size = config.memory_size

    def classify(self, region: MemoryRegion,
                 logical: int) -> AccessClass:
        if logical < self.ram_start:
            return AccessClass.IO
        if logical < self.ram_start + region.heap_size:
            return AccessClass.HEAP
        return AccessClass.STACK

    def to_physical(self, region: MemoryRegion, logical: int,
                    task_id: int) -> Tuple[int, AccessClass]:
        """Translate a logical data address; raises TaskFault when the
        access leaves the task's region."""
        if logical < 0 or logical >= self.memory_size:
            raise TaskFault(task_id,
                            f"logical address {logical:#06x} out of space")
        if logical < self.ram_start:
            return logical, AccessClass.IO
        if logical < self.ram_start + region.heap_size:
            physical = region.p_l + (logical - self.ram_start)
            if not region.p_l <= physical < region.p_h:
                raise TaskFault(
                    task_id, f"heap access {logical:#06x} beyond heap")
            return physical, AccessClass.HEAP
        physical = logical + (region.p_u - self.memory_size)
        if not region.p_h <= physical < region.p_u:
            raise TaskFault(
                task_id,
                f"stack access {logical:#06x} outside region "
                f"(physical {physical:#06x})")
        return physical, AccessClass.STACK

    def to_logical(self, region: MemoryRegion, physical: int,
                   task_id: int) -> int:
        """Inverse translation (used for SP reads and diagnostics)."""
        if physical < self.ram_start:
            return physical
        if region.p_l <= physical < region.p_h:
            return self.ram_start + (physical - region.p_l)
        if region.p_h <= physical <= region.p_u:
            # p_u itself maps to M: the logical SP of an empty stack is
            # RAM_END, i.e. physical p_u - 1.
            return physical - (region.p_u - self.memory_size)
        raise TaskFault(task_id,
                        f"physical address {physical:#06x} not owned")

    # -- stack-pointer views --------------------------------------------------

    def sp_to_logical(self, region: MemoryRegion, physical_sp: int) -> int:
        """The logical SP the application observes via IN SPL/SPH."""
        return physical_sp - (region.p_u - self.memory_size)

    def sp_to_physical(self, region: MemoryRegion, logical_sp: int) -> int:
        return logical_sp + (region.p_u - self.memory_size)

    def initial_sp(self, region: MemoryRegion) -> int:
        """Physical SP of a fresh task: empty stack at the region top."""
        return region.p_u - 1
