"""Memory regions: the application area partition.

Each task owns one region ``[p_l, p_u)`` with a fixed-size heap at the
bottom (``[p_l, p_h)``) and a variable-size stack at the top, growing
down from ``p_u`` (paper Figure 2).  Regions partition the application
area contiguously; stack relocation slides them around while preserving
every task's logical contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import KernelError, OutOfMemory
from .config import KernelConfig


@dataclass(frozen=True)
class ReleaseGrant:
    """What the kernel must do after a region release.

    Exactly one of the two fields is set:

    * ``heap_move``: the released region was the lowest; the region
      above absorbed it and its heap bytes must slide down —
      ``(src, dst, length)``.
    * ``stack_grant``: a region below absorbed the space by raising its
      ``p_u``; its live stack must slide up to hang from the new top
      and its SP must shift — ``(task_id, old_p_u, delta)``.

    ``task_id`` names the absorbing task in both cases: its region
    geometry changed, so the kernel must bump its ``region_epoch``.
    """

    heap_move: Optional[Tuple[int, int, int]] = None
    stack_grant: Optional[Tuple[int, int, int]] = None
    task_id: int = -1


@dataclass
class MemoryRegion:
    """One task's physical memory region."""

    task_id: int
    p_l: int  # lower bound (inclusive)
    p_h: int  # upper bound of the heap area (== p_l + heap size)
    p_u: int  # upper bound (exclusive); the stack bottom sits at p_u - 1

    @property
    def size(self) -> int:
        return self.p_u - self.p_l

    @property
    def heap_size(self) -> int:
        return self.p_h - self.p_l

    @property
    def stack_size(self) -> int:
        """Bytes currently assigned to the stack area."""
        return self.p_u - self.p_h

    def shift(self, delta: int) -> None:
        self.p_l += delta
        self.p_h += delta
        self.p_u += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Region task={self.task_id} [{self.p_l:#06x},"
                f"{self.p_h:#06x},{self.p_u:#06x})>")


class RegionTable:
    """Ordered, contiguous partition of the application area."""

    def __init__(self, config: KernelConfig):
        self.config = config
        self.lo = config.app_area.start
        self.hi = config.app_area.stop
        self.regions: List[MemoryRegion] = []  # ascending by address

    # -- allocation -----------------------------------------------------------

    def allocate_initial(self, heap_sizes: List[int],
                         task_ids: List[int]) -> List[MemoryRegion]:
        """Lay out one region per task, dividing free stack space.

        Every task gets its heap plus an equal share of the remaining
        space as initial stack (see KernelConfig.divide_stack_equally).
        Raises :class:`OutOfMemory` when any task's share falls below
        the configured minimum.
        """
        if len(heap_sizes) != len(task_ids):
            raise KernelError("heap_sizes and task_ids length mismatch")
        total = self.hi - self.lo
        heap_total = sum(heap_sizes)
        count = len(task_ids)
        stack_total = total - heap_total
        if count == 0:
            return []
        if self.config.divide_stack_equally:
            share = stack_total // count
        else:
            share = self.config.initial_stack_size
            if share * count > stack_total:
                raise OutOfMemory(
                    f"{count} tasks need {share * count} stack bytes, "
                    f"only {stack_total} available")
        if share < self.config.min_stack_size:
            raise OutOfMemory(
                f"per-task stack share {share} below minimum "
                f"{self.config.min_stack_size}")
        self.regions = []
        cursor = self.lo
        for index, (task_id, heap) in enumerate(zip(task_ids, heap_sizes)):
            top = cursor + heap + share
            if index == count - 1 and self.config.divide_stack_equally:
                top = self.hi  # last region absorbs the rounding remainder
            if top > self.hi:
                raise OutOfMemory("initial layout exceeds application area")
            region = MemoryRegion(task_id=task_id, p_l=cursor,
                                  p_h=cursor + heap, p_u=top)
            self.regions.append(region)
            cursor = top
        self.check_invariants()
        return list(self.regions)

    # -- lookup ------------------------------------------------------------------

    def by_task(self, task_id: int) -> MemoryRegion:
        for region in self.regions:
            if region.task_id == task_id:
                return region
        raise KeyError(f"no region for task {task_id}")

    def index_of(self, task_id: int) -> int:
        for index, region in enumerate(self.regions):
            if region.task_id == task_id:
                return index
        raise KeyError(f"no region for task {task_id}")

    def maybe_by_task(self, task_id: int) -> Optional[MemoryRegion]:
        try:
            return self.by_task(task_id)
        except KeyError:
            return None

    # -- termination --------------------------------------------------------------

    def release(self, task_id: int) -> Optional[ReleaseGrant]:
        """Remove a task's region, granting the space to a neighbour.

        Logical stack addresses are anchored to ``p_u``, so whichever
        neighbour absorbs the space needs a physical fix-up: the region
        below must slide its live stack up to the new top (its
        ``p_u - M`` displacement changed), while a region above must
        slide its heap down.  The returned :class:`ReleaseGrant` tells
        the kernel which bytes to move; region bookkeeping is already
        updated when this returns.
        """
        index = self.index_of(task_id)
        region = self.regions.pop(index)
        grant = None
        if self.regions:
            if index > 0:
                below = self.regions[index - 1]
                old_p_u = below.p_u
                below.p_u = region.p_u
                grant = ReleaseGrant(stack_grant=(
                    below.task_id, old_p_u, region.p_u - old_p_u),
                    task_id=below.task_id)
            else:
                above = self.regions[0]
                heap = above.heap_size
                grant = ReleaseGrant(heap_move=(
                    above.p_l, region.p_l, heap), task_id=above.task_id)
                above.p_l = region.p_l
                above.p_h = region.p_l + heap
            self.check_invariants()
        return grant

    # -- invariants ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Regions are ordered, non-overlapping, and tile the app area."""
        if not self.regions:
            return
        if self.regions[0].p_l != self.lo:
            raise KernelError("first region does not start at app base")
        if self.regions[-1].p_u != self.hi:
            raise KernelError("last region does not end at app top")
        for region in self.regions:
            if not (region.p_l <= region.p_h <= region.p_u):
                raise KernelError(f"malformed region {region}")
        for lower, upper in zip(self.regions, self.regions[1:]):
            if lower.p_u != upper.p_l:
                raise KernelError(
                    f"regions not contiguous: {lower} then {upper}")
