"""Task-specialized trap compilation: the trap JIT.

The generic trap path (:class:`~.traps.TrapHandlers`) re-derives, on
*every* access, facts that are constant for as long as a task's region
geometry stands still: the heap displacement ``p_l - ram_start``, the
stack displacement ``p_u - M``, the region bounds, the stack-check
floor.  This module compiles those constants into the trap code itself:
given a patched site, it emits Python source with the displacements
baked in as integer literals, so an in-region heap store becomes::

    mem[ta + 1843] = r[24]

instead of a ``dispatch`` -> handler -> ``region_of_current`` ->
``to_physical`` call chain.

Two consumers share one source generator:

* :meth:`TrapSpecializer.thunk_factory` wraps the source in a
  standalone ``def`` — the CPU's per-site decode cache uses it for
  stepwise execution and the exact-stop fallback;
* :meth:`TrapSpecializer.inline_source` hands the raw statement list to
  the superblock compiler (``AvrCpu._fuse_block``), which splices it in
  as the block terminator, eliminating even the thunk call.

Correctness rests on three facts:

1. **Sites are task-private.**  Every task's naturalized code occupies
   its own flash range and indirect branches are bounds-checked to the
   owning program, so a given site only ever executes as one task.  The
   specialization therefore guards on ``kernel.current is task``.
2. **Region constants are epoch-versioned.**  Whatever moves a region
   (stack relocation, a released neighbour's grant, loader compaction)
   bumps the owning task's ``region_epoch``; specialized code checks it
   on entry and deoptimizes — invalidating its own cache slot so the
   next decode re-specializes against the new constants — when stale.
3. **Everything else falls back.**  Accesses that leave the region
   (task-kill), IO-class pointer targets, relocating pushes, SP
   get/set, and every kind this module does not specialize run the
   generic ``dispatch`` path, bit-identical to a non-specializing
   kernel (``tests/test_trapspec.py`` proves it differentially).

The generated source's ``spec_key`` — every runtime constant baked into
it — doubles as the third component of the cross-node superblock cache
key (see :class:`repro.avr.cpu.SuperblockCache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..rewriter.classify import PatchKind
from . import costs

#: LD/ST pointer-mode base registers (mode stripped of +/-).
_PTR_BASE = {"X": 26, "Y": 28, "Z": 30}

#: Shared statement: per-execution trap count, identical to dispatch's.
_COUNT = "k_counts[k_kind] = k_counts.get(k_kind, 0) + 1"


@dataclass
class SpecializerStats:
    """Observability for tests and benchmarks."""

    compiled: int = 0   # specialized thunks / inline terminators built
    deopts: int = 0     # epoch/task guard failures (stale code retired)
    declined: int = 0   # sites left on the generic path


@dataclass
class TraceFacts:
    """Everything the trace compiler needs to chain one patched site.

    A read-only snapshot of the specialization inputs for *site* at
    compile time: the trampoline kind and params, the owning task, its
    region (None for region-free kinds) and region epoch, the kernel
    config, the namespace bindings the emitted code expects, and the
    same ``spec_key`` :meth:`TrapSpecializer.inline_source` would bake
    — so a trace's cache key composes per-site keys identically to the
    superblock cache's.
    """

    site: int
    target: int
    is_call: bool
    kind: "PatchKind"
    params: Tuple
    task: object
    region: object
    epoch: int
    config: object
    bindings: Dict[str, object]
    spec_key: Tuple
    #: Validated elision claim for the site ("heap"/"stack"/"pop"), or
    #: None.  When set, the emitters drop the corresponding bound guard
    #: (the certificate proves the fast arm is always taken); the claim
    #: is part of ``spec_key`` so cached code never crosses settings.
    elide: Optional[str] = None


class TrapSpecializer:
    """Compiles per-site trap code against a task's region constants."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.stats = SpecializerStats()
        self._gen: Dict[PatchKind, Callable] = {
            PatchKind.MEM_INDIRECT: self._mem_indirect,
            PatchKind.MEM_DIRECT: self._mem_direct,
            PatchKind.STACK_PUSH: self._stack_push,
            PatchKind.STACK_POP: self._stack_pop,
            PatchKind.CALL_DIRECT: self._call_direct,
            PatchKind.BRANCH_BACKWARD: self._branch_backward,
        }

    # -- entry points ------------------------------------------------------------

    def thunk_factory(self, cpu, site: int, target: int, is_call: bool):
        """Drop-in for ``TrapHandlers.thunk_factory``.

        Returns a specialized standalone thunk for the site when the
        kind/geometry allows, else the generic pre-bound thunk.
        """
        result = self.inline_source(cpu, site, target, is_call,
                                    invalidate=f"k_ex[{site}] = None")
        if result is None:
            return self.kernel.handlers.thunk_factory(cpu, site, target,
                                                      is_call)
        lines, bindings, _, _ = result
        ns = dict(bindings)
        ns["cpu"] = cpu
        ns["r"] = cpu.r
        ns["mem"] = cpu.mem.data
        source = "def _spec():\n" + "\n".join(
            "    " + line for line in lines)
        exec(compile(source, f"<trapspec@{site:#06x}>", "exec"), ns)
        self.stats.compiled += 1
        return ns["_spec"]

    def inline_source(self, cpu, site: int, target: int, is_call: bool,
                      invalidate: str, block=None):
        """Specialized source for a patched site, or None.

        Returns ``(lines, bindings, spec_key, full_body)``: flat
        statements (with relative indentation), the names they expect in
        the namespace, a hashable key of every runtime constant baked
        into them, and whether the statements form a complete closure
        body (the caller must then not emit its own member/terminator
        code).  *invalidate* is the statement the guard-failure branch
        runs to retire the caller's cache slot (``k_ex[site] = None``
        for thunks, ``k_bl[pc] = None`` for fused blocks).

        *block*, when given as ``(start, member_lines, cost, count,
        uses_sreg)``, describes the fused block the trap terminates;
        a backward branch whose target is the block start then compiles
        to a self-looping full body (see :meth:`_branch_backward_loop`).
        The returned ``spec_key`` never depends on *block* — the block
        shape is determined by ``(flash, pc)``, which already keys the
        superblock cache group.
        """
        kernel = self.kernel
        if site < 0:
            return None
        trampoline = kernel.trampolines.get(target)
        if trampoline is None:
            return None
        gen = self._gen.get(trampoline.kind)
        if gen is None:
            return None
        task = self._owner(site)
        if task is None:
            return None
        needs_region = trampoline.kind is not PatchKind.BRANCH_BACKWARD
        region = kernel.regions.maybe_by_task(task.task_id)
        if needs_region and region is None:
            return None
        slow = f"k_slow(cpu, {site}, {target}, {is_call})"
        bindings = {
            "k_kernel": kernel,
            "k_task": task,
            "k_counts": kernel.stats.trap_counts,
            "k_kind": trampoline.kind,
            "k_stats": kernel.stats,
            "k_spec": self.stats,
            "k_slow": kernel.handlers.dispatch,
            "k_sched": kernel.scheduler_tick,
            "k_ioread": kernel.io_read,
            "k_iowrite": kernel.io_write,
            "k_ex": cpu._exec,
            "k_bl": cpu._blocks,
        }
        config = kernel.config
        if not needs_region:
            spec_key = (trampoline.kind.name, trampoline.params,
                        config.branch_trap_period)
            if block is not None:
                loop = self._branch_backward_loop(
                    trampoline.params, site, block, invalidate, slow)
                if loop is not None:
                    return loop, bindings, spec_key, True
        claim = self._claim(site, trampoline.kind)
        body = gen(trampoline.params, site, region, slow, claim)
        if body is None:
            self.stats.declined += 1
            return None

        if needs_region:
            guard = (f"if k_task is not k_kernel.current "
                     f"or k_task.region_epoch != {task.region_epoch}:")
            spec_key = (trampoline.kind.name, trampoline.params,
                        task.region_epoch, region.p_l, region.p_h,
                        region.p_u, config.ram_start, config.memory_size,
                        config.stack_margin)
            if claim is not None:
                spec_key = spec_key + (("elide", claim),)
        else:
            guard = "if k_task is not k_kernel.current:"
        lines = [guard,
                 "    k_spec.deopts += 1",
                 f"    {invalidate}",
                 f"    {slow}",
                 "else:"]
        lines.extend("    " + line for line in body)
        return lines, bindings, spec_key, False

    def trace_facts(self, cpu, site: int, target: int,
                    is_call: bool) -> Optional[TraceFacts]:
        """Specialization facts for chaining *site* into a trace.

        Mirrors :meth:`inline_source`'s decline conditions exactly —
        a site this returns ``None`` for must end the trace, so every
        chained trap is one the specializer could also have compiled
        stand-alone.  Emission itself lives in
        :mod:`repro.avr.trace`; this keeps one owner of the facts
        (kind, params, owner task, region geometry, epoch, spec key).
        """
        kernel = self.kernel
        if site < 0:
            return None
        trampoline = kernel.trampolines.get(target)
        if trampoline is None:
            return None
        if trampoline.kind not in self._gen:
            return None
        task = self._owner(site)
        if task is None:
            return None
        needs_region = trampoline.kind is not PatchKind.BRANCH_BACKWARD
        region = kernel.regions.maybe_by_task(task.task_id)
        if needs_region and region is None:
            return None
        config = kernel.config
        claim = self._claim(site, trampoline.kind)
        if needs_region:
            spec_key = (trampoline.kind.name, trampoline.params,
                        task.region_epoch, region.p_l, region.p_h,
                        region.p_u, config.ram_start, config.memory_size,
                        config.stack_margin)
            if claim is not None:
                spec_key = spec_key + (("elide", claim),)
        else:
            region = None
            claim = None
            spec_key = (trampoline.kind.name, trampoline.params,
                        config.branch_trap_period)
        bindings = {
            "k_kernel": kernel,
            "k_task": task,
            "k_counts": kernel.stats.trap_counts,
            "k_stats": kernel.stats,
            "k_spec": self.stats,
            "k_slow": kernel.handlers.dispatch,
            "k_sched": kernel.scheduler_tick,
            "k_ex": cpu._exec,
            "k_bl": cpu._blocks,
        }
        return TraceFacts(site=site, target=target, is_call=is_call,
                          kind=trampoline.kind, params=trampoline.params,
                          task=task, region=region,
                          epoch=task.region_epoch, config=config,
                          bindings=bindings, spec_key=spec_key,
                          elide=claim)

    # -- helpers -----------------------------------------------------------------

    #: Which claim may elide which trampoline kind's guard.
    _ELIDABLE = {PatchKind.MEM_INDIRECT: ("heap", "stack"),
                 PatchKind.STACK_POP: ("pop",)}

    def _claim(self, site: int, kind: "PatchKind") -> Optional[str]:
        """The validated elision claim for *site*, when it matches the
        trampoline *kind* (None = keep every guard)."""
        claim = self.kernel.elisions.get(site)
        if claim is not None and claim in self._ELIDABLE.get(kind, ()):
            return claim
        return None

    def _owner(self, site: int):
        for task in self.kernel.tasks.values():
            if task.alive and task.owns_code(site):
                return task
        return None

    @staticmethod
    def _charge(cycles: int) -> List[str]:
        """Inlined ``kernel.charge`` (current task known non-None)."""
        return [f"cpu.cycles += {cycles}",
                f"k_stats.kernel_cycles += {cycles}",
                f"k_task.kernel_cycles += {cycles}"]

    # -- per-kind generators -----------------------------------------------------
    #
    # Each returns the fast-path statement list (the guard's else arm)
    # or None to decline.  The accounting mirrors traps.py exactly:
    # counts bump only on the committed fast path (slow-path arms call
    # dispatch, which counts itself), charges land after the memory
    # effect, and the high-water updates replicate ensure_stack_room.

    def _mem_indirect(self, params, site: int, region, slow: str,
                       claim=None):
        mnemonic, reg, mode, grouped = params
        resume = site + 2
        config = self.kernel.config
        rs = config.ram_start
        m = config.memory_size
        hh = rs + region.heap_size          # heap top, logical
        dh = region.p_l - rs                # heap displacement
        ds = region.p_u - m                 # stack displacement (<= 0)
        if mnemonic in ("LD", "ST"):
            base = _PTR_BASE[mode.strip("+-")]
            addr = [f"ta = r[{base}] | (r[{base + 1}] << 8)"]
            if mode.startswith("-"):
                addr.append("ta = (ta - 1) & 0xFFFF")
            if mode.endswith("+"):
                post = ["tu = (ta + 1) & 0xFFFF",
                        f"r[{base}] = tu & 0xFF",
                        f"r[{base + 1}] = tu >> 8"]
            elif mode.startswith("-"):
                post = [f"r[{base}] = ta & 0xFF",
                        f"r[{base + 1}] = ta >> 8"]
            else:
                post = []
            store = mnemonic == "ST"
        else:  # LDD / STD
            ptr, displacement = mode
            base = _PTR_BASE[ptr]
            addr = [f"ta = ((r[{base}] | (r[{base + 1}] << 8))"
                    f" + {displacement}) & 0xFFFF"]
            post = []
            store = mnemonic == "STD"
        overhead_heap = costs.MEM_GROUPED_FOLLOWER if grouped \
            else costs.MEM_INDIRECT_HEAP
        overhead_stack = costs.MEM_GROUPED_FOLLOWER if grouped \
            else costs.MEM_INDIRECT_STACK_FRAME
        eff_heap = f"mem[ta + {dh}] = r[{reg}]" if store \
            else f"r[{reg}] = mem[ta + {dh}]"
        eff_stack = f"mem[tp] = r[{reg}]" if store \
            else f"r[{reg}] = mem[tp]"
        arm_heap = [_COUNT, eff_heap] + self._charge(2 + overhead_heap) \
            + post + [f"cpu.pc = {resume}"]
        arm_stack = [_COUNT, eff_stack] + self._charge(2 + overhead_stack) \
            + post + [f"cpu.pc = {resume}"]
        if claim == "heap":
            # Certificate: ta is always inside the logical heap — the
            # range checks can never fail, so the arm runs unguarded
            # (same effects, counters and charges, no branches).
            return addr + arm_heap
        if claim == "stack":
            # Certificate: ta is always a live in-stack address.
            return addr + [f"tp = ta + ({ds})"] + arm_stack
        body = addr
        body.append(f"if {rs} <= ta < {hh}:")
        body.extend("    " + line for line in arm_heap)
        body.append(f"elif {hh} <= ta < {m}:")
        body.append(f"    tp = ta + ({ds})")
        body.append(f"    if tp >= {region.p_h}:")
        body.extend("        " + line for line in arm_stack)
        body.append("    else:")
        body.append(f"        {slow}")  # out of region: fault path
        body.append("else:")
        body.append(f"    {slow}")      # IO class or out of space
        return body

    def _mem_direct(self, params, site: int, region, slow: str,
                     claim=None):
        mnemonic, reg, logical = params
        resume = site + 2
        config = self.kernel.config
        rs = config.ram_start
        store = mnemonic == "STS"
        if logical < rs:
            effect = f"k_iowrite({logical}, r[{reg}])" if store \
                else f"r[{reg}] = k_ioread({logical})"
            cycles = 2 + costs.MEM_DIRECT_IO
        elif logical < rs + region.heap_size:
            physical = region.p_l + (logical - rs)
            effect = f"mem[{physical}] = r[{reg}]" if store \
                else f"r[{reg}] = mem[{physical}]"
            cycles = 2 + costs.MEM_DIRECT_OTHER
        elif logical < config.memory_size:
            physical = logical + (region.p_u - config.memory_size)
            if not region.p_h <= physical < region.p_u:
                return None  # faults at this geometry: stay generic
            effect = f"mem[{physical}] = r[{reg}]" if store \
                else f"r[{reg}] = mem[{physical}]"
            cycles = 2 + costs.MEM_DIRECT_OTHER
        else:
            return None      # out of logical space: always a fault
        return [_COUNT, effect] + self._charge(cycles) \
            + [f"cpu.pc = {resume}"]

    def _stack_push(self, params, site: int, region, slow: str,
                     claim=None):
        (reg,) = params
        resume = site + 2
        floor = region.p_h + self.kernel.config.stack_margin
        fast = [_COUNT,
                "if tsp < k_task.min_sp_seen: k_task.min_sp_seen = tsp",
                f"td = {region.p_u} - tsp",
                "if td > k_task.max_stack_used: "
                "k_task.max_stack_used = td",
                f"mem[tsp] = r[{reg}]",
                "cpu.sp = tsp - 1"] \
            + self._charge(2 + costs.STACK_OP) + [f"cpu.pc = {resume}"]
        body = ["tsp = cpu.sp", f"if tsp >= {floor}:"]
        body.extend("    " + line for line in fast)
        body.append("else:")
        body.append(f"    {slow}")  # needs relocation or overflows
        return body

    def _stack_pop(self, params, site: int, region, slow: str,
                    claim=None):
        (reg,) = params
        resume = site + 2
        fast = [_COUNT,
                "cpu.sp = tsp",
                f"r[{reg}] = mem[tsp]"] \
            + self._charge(2 + costs.STACK_OP) + [f"cpu.pc = {resume}"]
        if claim == "pop":
            # Certificate: stack depth >= 1 at this POP for every
            # reachable state — it cannot underflow.
            return ["tsp = cpu.sp + 1"] + fast
        body = ["tsp = cpu.sp + 1", f"if tsp < {region.p_u}:"]
        body.extend("    " + line for line in fast)
        body.append("else:")
        body.append(f"    {slow}")  # POP from an empty stack: fault
        return body

    def _call_direct(self, params, site: int, region, slow: str,
                      claim=None):
        (nat_target,) = params
        resume = site + 2
        floor = region.p_h + self.kernel.config.stack_margin
        fast = [_COUNT,
                "if tsp < k_task.min_sp_seen: k_task.min_sp_seen = tsp",
                f"td = {region.p_u + 1} - tsp",
                "if td > k_task.max_stack_used: "
                "k_task.max_stack_used = td",
                f"mem[tsp] = {resume & 0xFF}",
                f"mem[tsp - 1] = {(resume >> 8) & 0xFF}",
                "cpu.sp = tsp - 2",
                f"cpu.pc = {nat_target}"] \
            + self._charge(4 + costs.CALL_TRAMPOLINE)
        body = ["tsp = cpu.sp", f"if tsp - 1 >= {floor}:"]
        body.extend("    " + line for line in fast)
        body.append("else:")
        body.append(f"    {slow}")  # needs relocation or overflows
        return body

    def _branch_backward_loop(self, params, site: int, block,
                              invalidate: str, slow: str):
        """Complete closure body for a self-looping backward-branch trap.

        When the fused block's trap terminator branches back to the
        block's own start, the whole loop iterates *inside* the closure:
        cycles, instret, SREG, the trap count and the branch counter all
        live in locals until exit, so each iteration pays neither the
        dispatch overhead nor the attribute traffic of the generic trap
        path.  Exit conditions replicate ``AvrCpu._self_loop_body`` (the
        run-loop's per-dispatch event/limit/until checks) plus the
        branch-counter reaching zero — the loop flushes all state before
        ``scheduler_tick`` runs, so a preemption observes exactly what
        stepwise execution would.  The task/guard check runs once at
        entry: nothing inside the fast loop can retire the task or move
        a region.  Returns None when the branch does not target the
        block start.
        """
        bit, branch_if_set, nat_target = params
        start, members, cost, count, uses_sreg = block
        if nat_target != start:
            return None
        resume = site + 2
        inline = costs.BRANCH_COUNTER_INLINE
        period = self.kernel.config.branch_trap_period
        # Guard failure replicates the generic fused block verbatim:
        # members, member accounting, then the slow trap dispatch.
        deopt = ["k_spec.deopts += 1", invalidate]
        if uses_sreg:
            deopt.append("sr = cpu.sreg")
        deopt.extend(members)
        if uses_sreg:
            deopt.append("cpu.sreg = sr")
        if cost:
            deopt.append(f"cpu.cycles += {cost}")
        if count:
            deopt.append(f"cpu.instret += {count}")
        deopt.append(slow)
        deopt.append("cpu.instret += 1")

        fast = []
        if uses_sreg:
            fast.append("sr = cpu.sreg")
        fast += ["cy = cpu.cycles",
                 "n = cpu.instret",
                 "da = -1.0 if cpu._run_until is not None "
                 "else cpu.events.next_due",
                 "mi = cpu._run_mi",
                 "mc = cpu._run_mc",
                 "tb = k_task.branch_counter",
                 "it = 0",
                 "kc = 0",
                 "while True:"]
        inner = list(members)
        inner += ["it += 1",
                  f"n += {count + 1}",
                  "tb -= 1"]
        taken_arm = [f"cy += {cost + 2 + inline}",
                     f"kc += {2 + inline}",
                     f"if tb <= 0 or cy >= da or n + {count + 1} > mi "
                     f"or cy + {cost} >= mc:",
                     f"    cpu.pc = {start}",
                     "    break"]
        if bit is None:  # unconditional backward RJMP/JMP
            inner += taken_arm
        else:
            mask = 1 << bit
            flags = "sr" if uses_sreg else "cpu.sreg"
            test = f"{flags} & {mask}" if branch_if_set \
                else f"not ({flags} & {mask})"
            inner += ([f"if {test}:"]
                      + ["    " + line for line in taken_arm]
                      + ["else:",
                         f"    cpu.pc = {resume}",
                         f"    cy += {cost + 1 + inline}",
                         f"    kc += {1 + inline}",
                         "    break"])
        fast += ["    " + line for line in inner]
        if uses_sreg:
            fast.append("cpu.sreg = sr")
        fast += ["cpu.cycles = cy",
                 "cpu.instret = n",
                 "k_counts[k_kind] = k_counts.get(k_kind, 0) + it",
                 "k_stats.kernel_cycles += kc",
                 "k_task.kernel_cycles += kc",
                 "if tb <= 0:",
                 f"    k_task.branch_counter = {period}",
                 "    k_sched()",
                 "else:",
                 "    k_task.branch_counter = tb"]

        body = ["if k_task is not k_kernel.current:"]
        body += ["    " + line for line in deopt]
        body.append("else:")
        body += ["    " + line for line in fast]
        return body

    def _branch_backward(self, params, site: int, region, slow: str,
                          claim=None):
        bit, branch_if_set, nat_target = params
        resume = site + 2
        inline = costs.BRANCH_COUNTER_INLINE
        if bit is None:  # unconditional backward RJMP/JMP
            body = [_COUNT, f"cpu.pc = {nat_target}"] \
                + self._charge(2 + inline)
        else:
            mask = 1 << bit
            test = f"cpu.sreg & {mask}" if branch_if_set \
                else f"not (cpu.sreg & {mask})"
            body = [_COUNT, f"if {test}:", f"    cpu.pc = {nat_target}"]
            body.extend("    " + line for line in self._charge(2 + inline))
            body.append("else:")
            body.append(f"    cpu.pc = {resume}")
            body.extend("    " + line for line in self._charge(1 + inline))
        body.append("tb = k_task.branch_counter - 1")
        body.append("if tb <= 0:")
        body.append(f"    k_task.branch_counter = "
                    f"{self.kernel.config.branch_trap_period}")
        body.append("    k_sched()")
        body.append("else:")
        body.append("    k_task.branch_counter = tb")
        return body
