"""Round-robin ready queue with time slices (paper Section IV-B).

SenSmart schedules tasks round-robin with fixed time slices counted on
Timer3, and preempts at software traps: one out of every 256 executed
backward branches enters the kernel, which compares the running task's
elapsed slice against the quantum.  Preemption therefore lags the slice
boundary by at most the gap between traps — "usually no more than a
couple of microseconds".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .config import KernelConfig
from .task import Task, TaskState


class RoundRobinScheduler:
    """FIFO ready queue; the running task re-enters at the tail."""

    def __init__(self, config: KernelConfig):
        self.config = config
        self.ready: Deque[Task] = deque()

    def enqueue(self, task: Task) -> None:
        task.state = TaskState.READY
        self.ready.append(task)

    def pick(self) -> Optional[Task]:
        """Pop the next runnable task, skipping dead entries."""
        while self.ready:
            task = self.ready.popleft()
            if task.state is TaskState.READY:
                return task
        return None

    def remove(self, task: Task) -> None:
        try:
            self.ready.remove(task)
        except ValueError:
            pass

    def slice_expired(self, task: Task, now_cycles: int) -> bool:
        return now_cycles - task.slice_start_cycle >= \
            self.config.time_slice_cycles

    def __len__(self) -> int:
        return sum(1 for t in self.ready if t.state is TaskState.READY)
