"""Structured task-termination taxonomy.

The kernel used to terminate tasks with free-form strings; recovery
policies (restart / restart-with-backoff, watchdog, chaos campaigns)
need to *branch* on why a task died, so the reasons are now an enum.
``value`` carries the exact human-readable string the free-form API
used, which keeps ``KernelStats.terminations`` and ``task.exit_reason``
byte-identical for every pre-existing report and experiment.
"""

from __future__ import annotations

import enum


class TerminationReason(enum.Enum):
    """Why the kernel terminated a task.

    ``value`` is the human-readable rendering; a termination with extra
    context renders as ``f"{reason.value}: {detail}"`` (the FAULT
    variant reproduces the historical ``"fault: <why>"`` strings).
    """

    #: The task ran to completion (BREAK / task-exit trap).
    EXIT = "exit"
    #: Stack growth failed: no donor region had surplus to relocate.
    STACK_OVERFLOW = "stack overflow"
    #: SLEEP executed with no virtual timer armed — nothing can wake it.
    SLEEP_NO_TIMER = "sleep with no timer armed"
    #: Removed by the dynamic loader's unload service.
    UNLOADED = "unloaded"
    #: Control flow left the task's program for the kernel flash region.
    KERNEL_ESCAPE = "execution escaped into the kernel region"
    #: An invalid operation (out-of-region access, bad indirect branch,
    #: undecodable instruction after flash corruption, ...).
    FAULT = "fault"
    #: The software watchdog saw no scheduler progress for N slices.
    WATCHDOG = "watchdog: no scheduler progress"

    @property
    def restartable(self) -> bool:
        """May a restart policy revive a task that died this way?

        Voluntary endings (EXIT) and administrative removal (UNLOADED)
        are final; everything else is a failure a restart can answer.
        """
        return self not in (TerminationReason.EXIT,
                            TerminationReason.UNLOADED)

    def describe(self, detail: str = "") -> str:
        """Human-readable rendering, matching the legacy strings."""
        return f"{self.value}: {detail}" if detail else self.value


#: Valid per-task / per-node restart policies.
RESTART_POLICIES = ("never", "restart", "restart-with-backoff")


#: Detail substrings of FAULT terminations that mean *the containment
#: machinery itself* rejected the access — logical addressing, SP
#: virtualization, or indirect-branch translation said no.  One entry
#: per raise site (translation.py, traps.py, cpu wild access).
OOB_FAULT_MARKERS = (
    "out of space",            # logical address beyond memory_size
    "beyond heap",             # heap displacement left the region
    "outside region",          # stack access outside [p_h, p_u)
    "outside stack area",      # virtualized SP write rejected
    "outside the task's program",  # indirect branch / LPM translation
    "not owned",               # reverse translation of a foreign byte
    "POP from an empty stack",  # stack underflow
    "wild access",             # physical access off the memory map
)


def classify_fault_detail(detail: str) -> str:
    """Coarse class of a FAULT detail string.

    ``"oob"``: an out-of-bounds access the logical-addressing layer
    trapped (the containment win the survivability tables count);
    ``"invalid-insn"``: the CPU fetched an undecodable word (a wild
    jump landed in erased or data flash); ``"other"``: everything else.
    """
    for marker in OOB_FAULT_MARKERS:
        if marker in detail:
            return "oob"
    if "memory fault" in detail:
        return "oob"
    if "invalid instruction" in detail:
        return "invalid-insn"
    return "other"
