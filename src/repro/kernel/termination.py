"""Structured task-termination taxonomy.

The kernel used to terminate tasks with free-form strings; recovery
policies (restart / restart-with-backoff, watchdog, chaos campaigns)
need to *branch* on why a task died, so the reasons are now an enum.
``value`` carries the exact human-readable string the free-form API
used, which keeps ``KernelStats.terminations`` and ``task.exit_reason``
byte-identical for every pre-existing report and experiment.
"""

from __future__ import annotations

import enum


class TerminationReason(enum.Enum):
    """Why the kernel terminated a task.

    ``value`` is the human-readable rendering; a termination with extra
    context renders as ``f"{reason.value}: {detail}"`` (the FAULT
    variant reproduces the historical ``"fault: <why>"`` strings).
    """

    #: The task ran to completion (BREAK / task-exit trap).
    EXIT = "exit"
    #: Stack growth failed: no donor region had surplus to relocate.
    STACK_OVERFLOW = "stack overflow"
    #: SLEEP executed with no virtual timer armed — nothing can wake it.
    SLEEP_NO_TIMER = "sleep with no timer armed"
    #: Removed by the dynamic loader's unload service.
    UNLOADED = "unloaded"
    #: Control flow left the task's program for the kernel flash region.
    KERNEL_ESCAPE = "execution escaped into the kernel region"
    #: An invalid operation (out-of-region access, bad indirect branch,
    #: undecodable instruction after flash corruption, ...).
    FAULT = "fault"
    #: The software watchdog saw no scheduler progress for N slices.
    WATCHDOG = "watchdog: no scheduler progress"

    @property
    def restartable(self) -> bool:
        """May a restart policy revive a task that died this way?

        Voluntary endings (EXIT) and administrative removal (UNLOADED)
        are final; everything else is a failure a restart can answer.
        """
        return self not in (TerminationReason.EXIT,
                            TerminationReason.UNLOADED)

    def describe(self, detail: str = "") -> str:
        """Human-readable rendering, matching the legacy strings."""
        return f"{self.value}: {detail}" if detail else self.value


#: Valid per-task / per-node restart policies.
RESTART_POLICIES = ("never", "restart", "restart-with-backoff")
