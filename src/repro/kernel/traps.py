"""Trampoline trap handlers: the kernel runtime's entry points.

Every patched site's ``JMP`` lands here.  Each handler performs the
original instruction's semantics under logical addressing, charges the
Table II cycle cost on top of the instruction's native cost, and
resumes the task (or switches away from it).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..avr import ioports
from ..errors import KernelError, TaskFault
from ..rewriter.classify import PatchKind
from . import costs
from .termination import TerminationReason
from .translation import AccessClass

#: LD/ST pointer-mode base registers.
_PTR_BASE = {"X": 26, "X+": 26, "-X": 26, "Y": 28, "Y+": 28, "-Y": 28,
             "Z": 30, "Z+": 30, "-Z": 30}

#: Indirect-translation charge per access class.
_INDIRECT_CHARGE = {
    AccessClass.IO: costs.MEM_INDIRECT_IO,
    AccessClass.HEAP: costs.MEM_INDIRECT_HEAP,
    AccessClass.STACK: costs.MEM_INDIRECT_STACK_FRAME,
}


class TrapHandlers:
    """Dispatch table bound to one kernel instance."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._table = {
            PatchKind.MEM_INDIRECT: self.mem_indirect,
            PatchKind.MEM_DIRECT: self.mem_direct,
            PatchKind.STACK_PUSH: self.stack_push,
            PatchKind.STACK_POP: self.stack_pop,
            PatchKind.SP_READ: self.sp_read,
            PatchKind.SP_WRITE: self.sp_write,
            PatchKind.BRANCH_BACKWARD: self.branch_backward,
            PatchKind.CALL_DIRECT: self.call_direct,
            PatchKind.INDIRECT_JUMP: self.indirect_jump,
            PatchKind.INDIRECT_CALL: self.indirect_call,
            PatchKind.PROG_MEM: self.prog_mem,
            PatchKind.SLEEP: self.sleep,
            PatchKind.TASK_EXIT: self.task_exit,
            PatchKind.TIMER3_IO: self.timer3_io,
        }

    # -- dispatch -----------------------------------------------------------------

    def dispatch(self, cpu, site: int, target: int, is_call: bool) -> None:
        kernel = self.kernel
        trampoline = kernel.trampolines.get(target)
        if trampoline is None or site < 0:
            kernel.fault_current(TerminationReason.KERNEL_ESCAPE)
            return
        resume = site + 2
        counts = kernel.stats.trap_counts
        counts[trampoline.kind] = counts.get(trampoline.kind, 0) + 1
        try:
            self._table[trampoline.kind](cpu, trampoline.params, resume)
        except TaskFault as fault:
            kernel.terminate_task(kernel.current, TerminationReason.FAULT,
                                  fault.reason)

    def thunk_factory(self, cpu, site: int, target: int, is_call: bool):
        """Specialized trap thunk for a patched site, or None.

        The CPU resolves patched ``JMP``/``CALL`` sites through this at
        decode time, so the per-trap trampoline lookup, stats update and
        handler-table indexing of :meth:`dispatch` happen once per site
        instead of once per execution.  Unpatched entries (``site < 0``,
        or a target without a trampoline — execution escaping into the
        kernel region) fall back to :meth:`dispatch`.
        """
        if site < 0:
            return None
        trampoline = self.kernel.trampolines.get(target)
        if trampoline is None:
            return None
        kernel = self.kernel
        handler = self._table[trampoline.kind]
        params = trampoline.params
        kind = trampoline.kind
        counts = kernel.stats.trap_counts
        resume = site + 2

        def run():
            counts[kind] = counts.get(kind, 0) + 1
            try:
                handler(cpu, params, resume)
            except TaskFault as fault:
                kernel.terminate_task(kernel.current,
                                      TerminationReason.FAULT,
                                      fault.reason)
        return run

    # -- data memory ---------------------------------------------------------------

    def _translate(self, logical: int) -> Tuple[int, AccessClass]:
        kernel = self.kernel
        region = kernel.region_of_current()
        return kernel.translator.to_physical(region, logical,
                                             kernel.current.task_id)

    def _load(self, logical: int) -> Tuple[int, AccessClass]:
        physical, access = self._translate(logical)
        if access is AccessClass.IO:
            return self.kernel.io_read(physical), access
        return self.kernel.cpu.mem.data[physical], access

    def _store(self, logical: int, value: int) -> AccessClass:
        physical, access = self._translate(logical)
        if access is AccessClass.IO:
            self.kernel.io_write(physical, value)
        else:
            self.kernel.cpu.mem.data[physical] = value & 0xFF
        return access

    def mem_indirect(self, cpu, params, resume: int) -> None:
        mnemonic, reg, mode, grouped = params
        r = cpu.r
        if mnemonic in ("LD", "ST"):
            base = _PTR_BASE[mode]
            logical = r[base] | (r[base + 1] << 8)
            if mode.startswith("-"):
                logical = (logical - 1) & 0xFFFF
            if mnemonic == "ST":
                access = self._store(logical, r[reg])
            else:
                r[reg], access = self._load(logical)
            if mode.endswith("+"):
                updated = (logical + 1) & 0xFFFF
            elif mode.startswith("-"):
                updated = logical
            else:
                updated = None
            if updated is not None:
                r[base] = updated & 0xFF
                r[base + 1] = updated >> 8
        else:  # LDD / STD
            ptr, displacement = mode
            base = _PTR_BASE[ptr]
            logical = ((r[base] | (r[base + 1] << 8)) + displacement) \
                & 0xFFFF
            if mnemonic == "STD":
                access = self._store(logical, r[reg])
            else:
                r[reg], access = self._load(logical)
        overhead = costs.MEM_GROUPED_FOLLOWER if grouped \
            else _INDIRECT_CHARGE[access]
        self.kernel.charge(2 + overhead)
        cpu.pc = resume

    def mem_direct(self, cpu, params, resume: int) -> None:
        mnemonic, reg, logical = params
        if mnemonic == "STS":
            access = self._store(logical, cpu.r[reg])
        else:
            cpu.r[reg], access = self._load(logical)
        overhead = costs.MEM_DIRECT_IO if access is AccessClass.IO \
            else costs.MEM_DIRECT_OTHER
        self.kernel.charge(2 + overhead)
        cpu.pc = resume

    # -- stack ------------------------------------------------------------------------

    def stack_push(self, cpu, params, resume: int) -> None:
        (reg,) = params
        if not self.kernel.ensure_stack_room(1):
            return  # the push terminated the task; a new one now runs
        cpu.mem.data[cpu.sp] = cpu.r[reg]
        cpu.sp -= 1
        self.kernel.charge(2 + costs.STACK_OP)
        cpu.pc = resume

    def stack_pop(self, cpu, params, resume: int) -> None:
        (reg,) = params
        region = self.kernel.region_of_current()
        if cpu.sp + 1 >= region.p_u:
            raise TaskFault(self.kernel.current.task_id,
                            "POP from an empty stack")
        cpu.sp += 1
        cpu.r[reg] = cpu.mem.data[cpu.sp]
        self.kernel.charge(2 + costs.STACK_OP)
        cpu.pc = resume

    def sp_read(self, cpu, params, resume: int) -> None:
        reg, which = params
        region = self.kernel.region_of_current()
        logical_sp = self.kernel.translator.sp_to_logical(region, cpu.sp)
        cpu.r[reg] = (logical_sp & 0xFF) if which == "SPL" \
            else (logical_sp >> 8) & 0xFF
        self.kernel.charge(1 + costs.GET_SP)
        cpu.pc = resume

    def sp_write(self, cpu, params, resume: int) -> None:
        reg, which = params
        kernel = self.kernel
        region = kernel.region_of_current()
        logical_sp = kernel.translator.sp_to_logical(region, cpu.sp)
        if which == "SPL":
            logical_sp = (logical_sp & 0xFF00) | cpu.r[reg]
        else:
            logical_sp = (cpu.r[reg] << 8) | (logical_sp & 0x00FF)
        physical = kernel.translator.sp_to_physical(region, logical_sp)
        if not region.p_h - 1 <= physical <= region.p_u - 1:
            raise TaskFault(kernel.current.task_id,
                            f"SP set outside stack area "
                            f"(logical {logical_sp:#06x})")
        cpu.sp = physical
        kernel.charge(1 + costs.SET_SP)
        cpu.pc = resume

    # -- control flow -------------------------------------------------------------------

    def branch_backward(self, cpu, params, resume: int) -> None:
        bit, branch_if_set, nat_target = params
        kernel = self.kernel
        if bit is None:
            taken = True
            native = 2  # RJMP/JMP
        else:
            taken = bool(cpu.sreg & (1 << bit)) == branch_if_set
            native = 2 if taken else 1
        cpu.pc = nat_target if taken else resume
        kernel.charge(native + costs.BRANCH_COUNTER_INLINE)
        task = kernel.current
        task.branch_counter -= 1
        if task.branch_counter <= 0:
            task.branch_counter = kernel.config.branch_trap_period
            kernel.scheduler_tick()

    def call_direct(self, cpu, params, resume: int) -> None:
        (nat_target,) = params
        kernel = self.kernel
        if not kernel.ensure_stack_room(2):
            return  # the call terminated the task; a new one now runs
        cpu.mem.data[cpu.sp] = resume & 0xFF
        cpu.sp -= 1
        cpu.mem.data[cpu.sp] = (resume >> 8) & 0xFF
        cpu.sp -= 1
        cpu.pc = nat_target
        kernel.charge(4 + costs.CALL_TRAMPOLINE)

    def _indirect_target(self, cpu) -> int:
        """Translate the Z register (original address) to naturalized."""
        kernel = self.kernel
        task = kernel.current
        original = cpu.r[30] | (cpu.r[31] << 8)
        natural_program = task.image.natural
        program = natural_program.program
        if not program.origin <= original < \
                program.origin + program.size_words:
            raise TaskFault(task.task_id,
                            f"indirect branch to {original:#06x} outside "
                            f"the task's program")
        return natural_program.shift_table.to_naturalized(original)

    def indirect_jump(self, cpu, params, resume: int) -> None:
        cpu.pc = self._indirect_target(cpu)
        self.kernel.charge(2 + costs.PROG_MEM_TRANSLATION)

    def indirect_call(self, cpu, params, resume: int) -> None:
        kernel = self.kernel
        target = self._indirect_target(cpu)
        if not kernel.ensure_stack_room(2):
            return  # the call terminated the task; a new one now runs
        cpu.mem.data[cpu.sp] = resume & 0xFF
        cpu.sp -= 1
        cpu.mem.data[cpu.sp] = (resume >> 8) & 0xFF
        cpu.sp -= 1
        cpu.pc = target
        kernel.charge(3 + costs.PROG_MEM_TRANSLATION)

    def prog_mem(self, cpu, params, resume: int) -> None:
        reg, mode = params
        kernel = self.kernel
        task = kernel.current
        z = cpu.r[30] | (cpu.r[31] << 8)
        original_word = z >> 1
        natural_program = task.image.natural
        program = natural_program.program
        if not program.origin <= original_word < \
                program.origin + program.size_words:
            raise TaskFault(task.task_id,
                            f"LPM from {z:#06x} outside the task's program")
        natural_word = natural_program.shift_table.to_naturalized(
            original_word)
        byte_address = (natural_word << 1) | (z & 1)
        cpu.r[0 if mode == "LEGACY" else reg] = cpu.flash.byte(byte_address)
        if mode == "Z+":
            z = (z + 1) & 0xFFFF
            cpu.r[30] = z & 0xFF
            cpu.r[31] = z >> 8
        kernel.charge(3 + costs.LPM_TRANSLATION)
        cpu.pc = resume

    # -- CPU control ----------------------------------------------------------------------

    def sleep(self, cpu, params, resume: int) -> None:
        kernel = self.kernel
        kernel.charge(1 + costs.SLEEP_TRAP)
        cpu.pc = resume
        kernel.sleep_current()

    def task_exit(self, cpu, params, resume: int) -> None:
        kernel = self.kernel
        kernel.charge(costs.TASK_EXIT)
        kernel.terminate_task(kernel.current, TerminationReason.EXIT)

    # -- OS-reserved resources -----------------------------------------------------------

    def timer3_io(self, cpu, params, resume: int) -> None:
        mnemonic, operands = params
        kernel = self.kernel
        if mnemonic == "LDS":
            cpu.r[operands[0]] = kernel.io_read(operands[1])
        elif mnemonic == "STS":
            kernel.io_write(operands[1], cpu.r[operands[0]])
        elif mnemonic == "IN":
            cpu.r[operands[0]] = kernel.io_read(
                ioports.io_to_data(operands[1]))
        elif mnemonic == "OUT":
            kernel.io_write(ioports.io_to_data(operands[0]),
                            cpu.r[operands[1]])
        elif mnemonic in ("SBI", "CBI"):
            address = ioports.io_to_data(operands[0])
            mask = 1 << operands[1]
            value = kernel.io_read(address)
            kernel.io_write(address, (value | mask) if mnemonic == "SBI"
                            else (value & ~mask))
        else:
            raise TaskFault(kernel.current.task_id,
                            f"unsupported Timer3 access {mnemonic}")
        kernel.charge(2 + costs.TIMER3_VIRTUAL)
        cpu.pc = resume
