"""Task control block."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..toolchain.image import TaskImage
from .context import TaskContext
from .termination import TerminationReason


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"      # sleeping until ``wake_cycle``
    TERMINATED = "terminated"


@dataclass
class Task:
    """One application task: a process with its own memory region.

    SenSmart tasks are process-like, not thread-like — each has an
    independent logical address space with a heap and a stack (paper
    Section IV-C1).
    """

    task_id: int
    image: TaskImage
    context: TaskContext = field(default_factory=TaskContext)
    state: TaskState = TaskState.READY

    # -- scheduling state ---------------------------------------------------
    branch_counter: int = 0        # counts down to the next kernel entry
    slice_start_cycle: int = 0
    wake_cycle: Optional[int] = None

    #: Bumped whenever this task's region geometry changes (stack
    #: relocation, a released neighbour's grant, loader compaction).
    #: Specialized trap code bakes the region constants in and guards on
    #: this epoch; a mismatch deoptimizes to the generic dispatch path.
    region_epoch: int = 0

    # -- virtual timer service (intercepted Timer3) --------------------------
    timer_period_cycles: int = 0   # 0 = no periodic timer armed
    timer_next_fire: Optional[int] = None
    timer_pending: int = 0         # fires not yet consumed by SLEEP
    _timer_latch_high: int = 0     # OCR3AH write latch
    #: The scheduled fire on the CPU's event queue (repro.sim.Event).
    _timer_event: Optional[object] = None

    # -- accounting -----------------------------------------------------------
    cycles_used: int = 0
    kernel_cycles: int = 0
    switches: int = 0
    stack_grows: int = 0
    #: Lowest physical SP observed at a stack check (high-water mark of
    #: stack usage; interpret against the region geometry at that time).
    min_sp_seen: int = 0xFFFF
    #: Largest stack depth in bytes the task ever reached.
    max_stack_used: int = 0
    exit_reason: str = ""
    #: Structured form of the last termination (None while alive and
    #: never terminated; survives a restart so campaigns can tell what
    #: a revived task died of).
    termination: Optional[TerminationReason] = None

    # -- recovery -------------------------------------------------------------
    #: Per-task restart policy override; None inherits
    #: ``KernelConfig.restart_policy``.
    restart_policy: Optional[str] = None
    #: Per-task restart cap override; None inherits
    #: ``KernelConfig.restart_max``.
    restart_max: Optional[int] = None
    #: Times a restart policy has revived this task.
    restarts_used: int = 0
    #: Pending restart-with-backoff wake event (repro.sim.Event).
    _restart_event: Optional[object] = None

    @property
    def name(self) -> str:
        return self.image.name

    @property
    def heap_size(self) -> int:
        return self.image.heap_size

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.TERMINATED

    def owns_code(self, address: int) -> bool:
        """Does a flash word address fall inside this task's program?"""
        return self.image.natural.contains(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Task {self.task_id} {self.name!r} {self.state.value} "
                f"pc={self.context.pc:#06x} sp={self.context.sp:#06x}>")
