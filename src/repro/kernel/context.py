"""Register context save/restore for task switching."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaskContext:
    """A task's saved CPU state.

    ``sp`` is the *physical* stack pointer: during execution the CPU's
    SP register holds physical addresses (stack pushes and pops then run
    at native layout), and the SP get/set trampolines convert to and
    from the logical view applications see (paper Section IV-C2).
    """

    regs: bytearray = field(default_factory=lambda: bytearray(32))
    pc: int = 0
    sreg: int = 0
    sp: int = 0

    def save_from(self, cpu) -> None:
        self.regs[:] = cpu.r
        self.pc = cpu.pc
        self.sreg = cpu.sreg
        self.sp = cpu.sp

    def restore_to(self, cpu) -> None:
        cpu.r[:] = self.regs
        cpu.pc = self.pc
        cpu.sreg = self.sreg
        cpu.sp = self.sp
