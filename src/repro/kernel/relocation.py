"""Stack relocation: the versatile-stack mechanism (paper Section IV-C3).

When a stack check detects impending overflow, the kernel enumerates all
tasks, picks the one with the most surplus stack space, takes **half**
of that surplus, and slides the memory regions between donor and needy
so the needy task's stack area grows.  Tasks only ever use logical
addresses, so the moves are invisible to them.

The geometry (regions ascend in address; each region's heap sits at its
bottom and its stack hangs from its top):

* donor **above** needy: the donor's heap slides up by ``delta``, every
  region in between slides up wholly, and the needy task's used stack
  bytes slide up to the new region top.
* donor **below** needy: mirror image — the donor's used stack slides
  down, regions in between slide down, the needy task's heap slides
  down, and the needy stack area grows at its bottom (no stack bytes
  move).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..avr.memory import DataMemory
from . import costs
from .config import KernelConfig
from .regions import MemoryRegion, RegionTable


@dataclass
class RelocationResult:
    """Outcome of one relocation attempt."""

    moved: bool
    donor_task: int = -1
    delta: int = 0
    bytes_moved: int = 0
    cycles: int = 0


class StackRelocator:
    """Implements donor selection and the physical region slides."""

    def __init__(self, config: KernelConfig, memory: DataMemory,
                 regions: RegionTable,
                 sp_of: Callable[[int], int]):
        """*sp_of(task_id)* returns a task's current physical SP."""
        self.config = config
        self.memory = memory
        self.regions = regions
        self.sp_of = sp_of
        self.relocation_count = 0

    # -- surplus computation ----------------------------------------------------

    def surplus(self, region: MemoryRegion) -> int:
        """Free stack bytes a region could give away.

        The used stack occupies ``(sp, p_u)``; bytes in ``[p_h, sp]``
        are free.  A donor must keep ``min_donor_surplus`` for itself.
        """
        sp = self.sp_of(region.task_id)
        free = sp + 1 - region.p_h
        return free - self.config.min_donor_surplus

    def pick_donor(self, needy_task: int) -> Optional[MemoryRegion]:
        best: Optional[MemoryRegion] = None
        best_surplus = 0
        for region in self.regions.regions:
            if region.task_id == needy_task:
                continue
            value = self.surplus(region)
            if value > best_surplus:
                best, best_surplus = region, value
        return best

    # -- the relocation ------------------------------------------------------------

    def grow_stack(self, needy_task: int, needed: int) -> RelocationResult:
        """Try to give *needy_task* at least *needed* more stack bytes.

        Returns a result with ``moved=False`` when no donor has enough
        surplus — the caller then terminates a task (paper Section V-D).
        """
        donor_region = self.pick_donor(needy_task)
        if donor_region is None:
            return RelocationResult(moved=False)
        donor_surplus = self.surplus(donor_region)
        if donor_surplus < needed:
            return RelocationResult(moved=False)
        # "provides half of its available stack space" — but never less
        # than the requester actually needs.
        delta = min(donor_surplus, max(needed, donor_surplus // 2))

        needy_index = self.regions.index_of(needy_task)
        donor_index = self.regions.index_of(donor_region.task_id)
        if donor_index > needy_index:
            bytes_moved = self._slide_up(needy_index, donor_index, delta)
        else:
            bytes_moved = self._slide_down(needy_index, donor_index, delta)
        self.regions.check_invariants()
        self.relocation_count += 1
        cycles = costs.STACK_RELOCATION + \
            costs.RELOCATION_PER_BYTE * bytes_moved
        return RelocationResult(moved=True,
                                donor_task=donor_region.task_id,
                                delta=delta, bytes_moved=bytes_moved,
                                cycles=cycles)

    def _slide_up(self, needy_index: int, donor_index: int,
                  delta: int) -> int:
        """Donor above needy: intervening blocks move up by delta."""
        regions = self.regions.regions
        donor = regions[donor_index]
        needy = regions[needy_index]
        moved = 0

        # 1. Donor's heap slides up into its own free stack space.
        moved += self._move(donor.p_l, donor.p_l + delta, donor.heap_size)
        donor.p_l += delta
        donor.p_h += delta
        self.on_region_change(donor.task_id)

        # 2. Whole regions between donor and needy slide up (top first);
        #    their stacks move with them, so their SPs shift too.
        for index in range(donor_index - 1, needy_index, -1):
            region = regions[index]
            moved += self._move(region.p_l, region.p_l + delta, region.size)
            region.shift(delta)
            self._adjust_sp(region.task_id, delta)
            self.on_region_change(region.task_id)

        # 3. Needy's used stack slides up to hang from the new top.
        sp = self.sp_of(needy.task_id)
        used = needy.p_u - (sp + 1)
        moved += self._move(sp + 1, sp + 1 + delta, used)
        needy.p_u += delta
        self._adjust_sp(needy.task_id, delta)
        self.on_region_change(needy.task_id)
        return moved

    def _slide_down(self, needy_index: int, donor_index: int,
                    delta: int) -> int:
        """Donor below needy: intervening blocks move down by delta."""
        regions = self.regions.regions
        donor = regions[donor_index]
        needy = regions[needy_index]
        moved = 0

        # 1. Donor's used stack slides down onto its free space.
        sp = self.sp_of(donor.task_id)
        used = donor.p_u - (sp + 1)
        moved += self._move(sp + 1, sp + 1 - delta, used)
        donor.p_u -= delta
        self._adjust_sp(donor.task_id, -delta)
        self.on_region_change(donor.task_id)

        # 2. Whole regions between donor and needy slide down
        #    (bottom first); their SPs shift with them.
        for index in range(donor_index + 1, needy_index):
            region = regions[index]
            moved += self._move(region.p_l, region.p_l - delta, region.size)
            region.shift(-delta)
            self._adjust_sp(region.task_id, -delta)
            self.on_region_change(region.task_id)

        # 3. Needy's heap slides down; its stack area grows at the
        #    bottom (stack bytes stay put, SP unchanged).
        moved += self._move(needy.p_l, needy.p_l - delta, needy.heap_size)
        needy.p_l -= delta
        needy.p_h -= delta
        self.on_region_change(needy.task_id)
        return moved

    def _move(self, src: int, dst: int, length: int) -> int:
        if length > 0 and src != dst:
            self.memory.move_block(src, dst, length)
        return max(length, 0)

    def _adjust_sp(self, task_id: int, delta: int) -> None:
        """Inform the kernel that a task's physical SP moved."""
        # Implemented by the kernel via callback injection.
        self.on_sp_adjust(task_id, delta)

    #: Hook the kernel sets: ``on_sp_adjust(task_id, delta)``.
    on_sp_adjust: Callable[[int, int], None] = staticmethod(
        lambda task_id, delta: None)

    #: Hook the kernel sets: ``on_region_change(task_id)``, called once
    #: per region whose geometry (p_l/p_h/p_u) a slide changed.  The
    #: kernel bumps the task's ``region_epoch`` so trap code specialized
    #: against the old constants deoptimizes.
    on_region_change: Callable[[int], None] = staticmethod(
        lambda task_id: None)
