"""Instruction-set specification for the ATmega128L subset.

The simulator implements a faithful subset of the 8-bit AVR instruction
set — the instructions avr-gcc actually emits for C code on a MICA2 mote,
plus the CPU-control instructions SenSmart's rewriter cares about.  Each
mnemonic is described by an :class:`OpSpec` giving its encoding *format*,
its base cycle count on an ATmega128, and its *kind* — the classification
the binary rewriter uses to decide whether (and how) a site must be
patched (paper Section IV-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

#: Number of general-purpose registers (r0..r31).
NUM_REGS = 32

#: Pointer-register pairs, by conventional name.
REG_X = 26  # XL:XH = r26:r27
REG_Y = 28  # YL:YH = r28:r29
REG_Z = 30  # ZL:ZH = r30:r31

#: I/O-space addresses (0..63) of the stack pointer and status register.
IO_SPL = 0x3D
IO_SPH = 0x3E
IO_SREG = 0x3F

#: SREG flag bit numbers.
FLAG_C, FLAG_Z, FLAG_N, FLAG_V, FLAG_S, FLAG_H, FLAG_T, FLAG_I = range(8)


class Format(enum.Enum):
    """Binary encoding format families (see ``encoding.py``)."""

    R2 = "r2"            # Rd, Rr               (ADD, MOV, CP, ...)
    RD = "rd"            # Rd                   (COM, INC, LSR, ...)
    IMM8 = "imm8"        # Rd (16-31), K8       (LDI, CPI, SUBI, ...)
    MOVW = "movw"        # even Rd, even Rr
    MUL = "mul"          # Rd, Rr
    LDST_DISP = "disp"   # Rd, Y/Z, q0-63       (LDD, STD)
    LDST_PTR = "ptr"     # Rd, ptr mode         (LD/ST with X/Y/Z +/-)
    LDST_DIRECT = "lds"  # Rd, k16 — 32-bit     (LDS, STS)
    PUSHPOP = "pushpop"  # Rr                   (PUSH, POP)
    LPM = "lpm"          # Rd, Z or Z+          (LPM forms)
    IO = "io"            # Rd, A0-63            (IN, OUT)
    IOBIT = "iobit"      # A0-31, b             (CBI, SBI, SBIC, SBIS)
    REL12 = "rel12"      # k ±2047 words        (RJMP, RCALL)
    BRANCH = "branch"    # s, k ±63 words       (BRBS, BRBC)
    SKIP_REG = "skipreg"  # Rr, b               (SBRC, SBRS)
    TFLAG = "tflag"      # Rd, b                (BLD, BST)
    ADIW = "adiw"        # Rd in {24,26,28,30}, K0-63
    JMPCALL = "jmpcall"  # k 22-bit — 32-bit    (JMP, CALL)
    SREG_OP = "sregop"   # s                    (BSET, BCLR)
    IMPLIED = "implied"  # no operands          (NOP, RET, SLEEP, ...)


class Kind(enum.Flag):
    """Semantic classification used by the rewriter.

    A single instruction may carry several kinds, e.g. ``PUSH`` is both a
    data-memory access and a stack-pointer mutation.
    """

    NONE = 0
    ALU = enum.auto()            # pure register computation
    DATA_MEM = enum.auto()       # reads or writes data memory
    STACK_MUT = enum.auto()      # implicitly changes SP
    PROG_MEM = enum.auto()       # reads program memory as data (LPM)
    BRANCH = enum.auto()         # may change PC (direct target)
    INDIRECT = enum.auto()       # target depends on runtime register state
    SKIP = enum.auto()           # conditionally skips the next instruction
    IO_ACCESS = enum.auto()      # IN/OUT-style I/O space access
    CPU_CTRL = enum.auto()       # SLEEP, WDR, BREAK
    CALL = enum.auto()           # pushes a return address
    RETURN = enum.auto()         # pops a return address


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: Format
    cycles: int
    kind: Kind
    words: int = 1  # size in 16-bit flash words

    @property
    def size_bytes(self) -> int:
        return self.words * 2


def _spec(mnemonic: str, fmt: Format, cycles: int, kind: Kind,
          words: int = 1) -> Tuple[str, OpSpec]:
    return mnemonic, OpSpec(mnemonic, fmt, cycles, kind, words)


#: The instruction table.  Cycle counts follow the ATmega128 datasheet;
#: conditional extra cycles (taken branches, skips, pointer pre/post ops)
#: are applied by the CPU at execution time.
OPCODES: Dict[str, OpSpec] = dict([
    # --- two-register ALU -------------------------------------------------
    _spec("ADD", Format.R2, 1, Kind.ALU),
    _spec("ADC", Format.R2, 1, Kind.ALU),
    _spec("SUB", Format.R2, 1, Kind.ALU),
    _spec("SBC", Format.R2, 1, Kind.ALU),
    _spec("AND", Format.R2, 1, Kind.ALU),
    _spec("OR", Format.R2, 1, Kind.ALU),
    _spec("EOR", Format.R2, 1, Kind.ALU),
    _spec("CP", Format.R2, 1, Kind.ALU),
    _spec("CPC", Format.R2, 1, Kind.ALU),
    _spec("MOV", Format.R2, 1, Kind.ALU),
    _spec("CPSE", Format.R2, 1, Kind.ALU | Kind.SKIP),
    _spec("MUL", Format.MUL, 2, Kind.ALU),
    _spec("MOVW", Format.MOVW, 1, Kind.ALU),
    # --- single-register ALU ----------------------------------------------
    _spec("COM", Format.RD, 1, Kind.ALU),
    _spec("NEG", Format.RD, 1, Kind.ALU),
    _spec("SWAP", Format.RD, 1, Kind.ALU),
    _spec("INC", Format.RD, 1, Kind.ALU),
    _spec("ASR", Format.RD, 1, Kind.ALU),
    _spec("LSR", Format.RD, 1, Kind.ALU),
    _spec("ROR", Format.RD, 1, Kind.ALU),
    _spec("DEC", Format.RD, 1, Kind.ALU),
    # --- register-immediate ALU (Rd = r16..r31) ----------------------------
    _spec("CPI", Format.IMM8, 1, Kind.ALU),
    _spec("SBCI", Format.IMM8, 1, Kind.ALU),
    _spec("SUBI", Format.IMM8, 1, Kind.ALU),
    _spec("ORI", Format.IMM8, 1, Kind.ALU),
    _spec("ANDI", Format.IMM8, 1, Kind.ALU),
    _spec("LDI", Format.IMM8, 1, Kind.ALU),
    # --- word arithmetic on pointer pairs ----------------------------------
    _spec("ADIW", Format.ADIW, 2, Kind.ALU),
    _spec("SBIW", Format.ADIW, 2, Kind.ALU),
    # --- data memory -------------------------------------------------------
    _spec("LD", Format.LDST_PTR, 2, Kind.DATA_MEM),
    _spec("ST", Format.LDST_PTR, 2, Kind.DATA_MEM),
    _spec("LDD", Format.LDST_DISP, 2, Kind.DATA_MEM),
    _spec("STD", Format.LDST_DISP, 2, Kind.DATA_MEM),
    _spec("LDS", Format.LDST_DIRECT, 2, Kind.DATA_MEM, words=2),
    _spec("STS", Format.LDST_DIRECT, 2, Kind.DATA_MEM, words=2),
    _spec("PUSH", Format.PUSHPOP, 2, Kind.DATA_MEM | Kind.STACK_MUT),
    _spec("POP", Format.PUSHPOP, 2, Kind.DATA_MEM | Kind.STACK_MUT),
    _spec("LPM", Format.LPM, 3, Kind.PROG_MEM),
    # --- I/O space ----------------------------------------------------------
    _spec("IN", Format.IO, 1, Kind.IO_ACCESS),
    _spec("OUT", Format.IO, 1, Kind.IO_ACCESS),
    _spec("CBI", Format.IOBIT, 2, Kind.IO_ACCESS),
    _spec("SBI", Format.IOBIT, 2, Kind.IO_ACCESS),
    _spec("SBIC", Format.IOBIT, 1, Kind.IO_ACCESS | Kind.SKIP),
    _spec("SBIS", Format.IOBIT, 1, Kind.IO_ACCESS | Kind.SKIP),
    # --- control flow --------------------------------------------------------
    _spec("RJMP", Format.REL12, 2, Kind.BRANCH),
    _spec("RCALL", Format.REL12, 3,
          Kind.BRANCH | Kind.CALL | Kind.DATA_MEM | Kind.STACK_MUT),
    _spec("JMP", Format.JMPCALL, 3, Kind.BRANCH, words=2),
    _spec("CALL", Format.JMPCALL, 4,
          Kind.BRANCH | Kind.CALL | Kind.DATA_MEM | Kind.STACK_MUT, words=2),
    _spec("IJMP", Format.IMPLIED, 2, Kind.BRANCH | Kind.INDIRECT),
    _spec("ICALL", Format.IMPLIED, 3,
          Kind.BRANCH | Kind.INDIRECT | Kind.CALL | Kind.DATA_MEM
          | Kind.STACK_MUT),
    _spec("RET", Format.IMPLIED, 4,
          Kind.BRANCH | Kind.RETURN | Kind.DATA_MEM | Kind.STACK_MUT),
    _spec("RETI", Format.IMPLIED, 4,
          Kind.BRANCH | Kind.RETURN | Kind.DATA_MEM | Kind.STACK_MUT),
    _spec("BRBS", Format.BRANCH, 1, Kind.BRANCH),
    _spec("BRBC", Format.BRANCH, 1, Kind.BRANCH),
    _spec("SBRC", Format.SKIP_REG, 1, Kind.SKIP),
    _spec("SBRS", Format.SKIP_REG, 1, Kind.SKIP),
    # --- flag / bit manipulation ---------------------------------------------
    _spec("BSET", Format.SREG_OP, 1, Kind.ALU),
    _spec("BCLR", Format.SREG_OP, 1, Kind.ALU),
    _spec("BLD", Format.TFLAG, 1, Kind.ALU),
    _spec("BST", Format.TFLAG, 1, Kind.ALU),
    # --- CPU control -----------------------------------------------------------
    _spec("NOP", Format.IMPLIED, 1, Kind.NONE),
    _spec("SLEEP", Format.IMPLIED, 1, Kind.CPU_CTRL),
    _spec("WDR", Format.IMPLIED, 1, Kind.CPU_CTRL),
    _spec("BREAK", Format.IMPLIED, 1, Kind.CPU_CTRL),
])


#: Pointer addressing modes for Format.LDST_PTR, as (name, base register).
#: Plain ``Y``/``Z`` accesses are canonicalized by the assembler to
#: ``LDD/STD`` with displacement 0, exactly as avr-gcc's assembler does.
PTR_MODES = ("X", "X+", "-X", "Y+", "-Y", "Z+", "-Z")
PTR_BASE = {"X": REG_X, "X+": REG_X, "-X": REG_X,
            "Y+": REG_Y, "-Y": REG_Y,
            "Z+": REG_Z, "-Z": REG_Z,
            "Y": REG_Y, "Z": REG_Z}

#: Branch aliases: mnemonic -> (base mnemonic, SREG bit).
#: ``BRBS s,k`` branches when SREG bit *s* is set, ``BRBC`` when clear.
BRANCH_ALIASES = {
    "BRCS": ("BRBS", FLAG_C), "BRLO": ("BRBS", FLAG_C),
    "BRCC": ("BRBC", FLAG_C), "BRSH": ("BRBC", FLAG_C),
    "BREQ": ("BRBS", FLAG_Z), "BRNE": ("BRBC", FLAG_Z),
    "BRMI": ("BRBS", FLAG_N), "BRPL": ("BRBC", FLAG_N),
    "BRVS": ("BRBS", FLAG_V), "BRVC": ("BRBC", FLAG_V),
    "BRLT": ("BRBS", FLAG_S), "BRGE": ("BRBC", FLAG_S),
    "BRHS": ("BRBS", FLAG_H), "BRHC": ("BRBC", FLAG_H),
    "BRTS": ("BRBS", FLAG_T), "BRTC": ("BRBC", FLAG_T),
    "BRIE": ("BRBS", FLAG_I), "BRID": ("BRBC", FLAG_I),
}

#: SREG set/clear aliases: mnemonic -> (base mnemonic, SREG bit).
SREG_ALIASES = {
    "SEC": ("BSET", FLAG_C), "CLC": ("BCLR", FLAG_C),
    "SEZ": ("BSET", FLAG_Z), "CLZ": ("BCLR", FLAG_Z),
    "SEN": ("BSET", FLAG_N), "CLN": ("BCLR", FLAG_N),
    "SEV": ("BSET", FLAG_V), "CLV": ("BCLR", FLAG_V),
    "SES": ("BSET", FLAG_S), "CLS": ("BCLR", FLAG_S),
    "SEH": ("BSET", FLAG_H), "CLH": ("BCLR", FLAG_H),
    "SET": ("BSET", FLAG_T), "CLT": ("BCLR", FLAG_T),
    "SEI": ("BSET", FLAG_I), "CLI": ("BCLR", FLAG_I),
}

#: Other pseudo-instructions the assembler canonicalizes:
#:   TST Rd -> AND Rd,Rd;  CLR Rd -> EOR Rd,Rd;  LSL Rd -> ADD Rd,Rd;
#:   ROL Rd -> ADC Rd,Rd.
SYNTH_R2 = {"TST": "AND", "CLR": "EOR", "LSL": "ADD", "ROL": "ADC"}


def spec(mnemonic: str) -> OpSpec:
    """Return the :class:`OpSpec` for *mnemonic* (must be canonical)."""
    return OPCODES[mnemonic]
