"""Decoded-instruction model.

An :class:`Instruction` is the canonical, format-normalized form shared by
the assembler, the encoder/decoder, the disassembler, the CPU and the
binary rewriter.  Operand tuples per format:

=============  =======================================================
Format         Operands
=============  =======================================================
R2, MUL        ``(Rd, Rr)``
MOVW           ``(Rd, Rr)`` — both even
RD, PUSHPOP    ``(Rd,)``
IMM8           ``(Rd, K)`` — Rd in 16..31
LDST_DISP      ``(Rd, ptr, q)`` — ptr ``"Y"`` or ``"Z"``, q in 0..63
LDST_PTR       ``(Rd, mode)`` — mode one of ``X X+ -X Y+ -Y Z+ -Z``
LDST_DIRECT    ``(Rd, k)`` — k a 16-bit data address
LPM            ``(Rd, mode)`` — mode ``"LEGACY"`` (Rd==0), ``"Z"``, ``"Z+"``
IO             IN: ``(Rd, A)``;  OUT: ``(A, Rr)``
IOBIT          ``(A, b)``
REL12          ``(k,)`` — signed word offset
BRANCH         ``(s, k)`` — SREG bit, signed word offset
SKIP_REG       ``(Rr, b)``
TFLAG          ``(Rd, b)``
ADIW           ``(Rd, K)`` — Rd in {24, 26, 28, 30}
JMPCALL        ``(k,)`` — absolute word address
SREG_OP        ``(s,)``
IMPLIED        ``()``
=============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .isa import Format, Kind, OpSpec, OPCODES


@dataclass(frozen=True)
class Instruction:
    """One decoded AVR instruction, pinned to a flash word address."""

    mnemonic: str
    operands: Tuple = ()
    address: int = -1  # flash word address; -1 when not yet placed

    @property
    def opspec(self) -> OpSpec:
        return OPCODES[self.mnemonic]

    @property
    def words(self) -> int:
        """Size in 16-bit flash words (1 or 2)."""
        return self.opspec.words

    @property
    def size_bytes(self) -> int:
        return self.words * 2

    @property
    def kind(self) -> Kind:
        return self.opspec.kind

    @property
    def next_address(self) -> int:
        """Word address of the instruction that follows in memory."""
        return self.address + self.words

    # -- control-flow helpers used by the rewriter --------------------------

    def branch_target(self) -> int:
        """Static branch target (word address) for direct branches.

        Raises :class:`ValueError` for instructions whose target is not
        statically known (indirect branches, returns, skips).
        """
        fmt = self.opspec.fmt
        if fmt is Format.REL12:
            return self.next_address + self.operands[0]
        if fmt is Format.BRANCH:
            return self.next_address + self.operands[1]
        if fmt is Format.JMPCALL:
            return self.operands[0]
        raise ValueError(f"{self.mnemonic} has no static branch target")

    def is_backward_branch(self) -> bool:
        """True for a direct branch whose target is at or before itself.

        SenSmart's scheduler piggybacks on backward branches (every loop
        must contain one), so the rewriter patches exactly these sites.
        """
        fmt = self.opspec.fmt
        if fmt in (Format.REL12, Format.BRANCH, Format.JMPCALL):
            if self.mnemonic in ("RCALL", "CALL"):
                return False  # calls are patched as calls, not as loops
            return self.branch_target() <= self.address
        return False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(str(o) for o in self.operands)
        loc = f"{self.address:#06x}: " if self.address >= 0 else ""
        return f"{loc}{self.mnemonic} {ops}".rstrip()


def at(instruction: Instruction, address: int) -> Instruction:
    """Return a copy of *instruction* pinned to *address*."""
    return Instruction(instruction.mnemonic, instruction.operands, address)


@dataclass(frozen=True)
class DataWord:
    """A raw 16-bit flash word that is data, not code (e.g. ``.dw``)."""

    value: int
    address: int = -1

    words: int = field(default=1, init=False)

    @property
    def size_bytes(self) -> int:
        return 2
