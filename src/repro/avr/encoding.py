"""Real AVR binary encodings for the supported instruction subset.

Encodings follow the Atmel AVR instruction-set manual bit-for-bit, so the
rewriter's size accounting (16-bit vs 32-bit instructions, shift tables,
code inflation in Figure 4) measures genuine machine-code properties.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import EncodingError
from .instruction import Instruction
from .isa import Format, OPCODES

# -- encode helpers ----------------------------------------------------------

_R2_PREFIX = {
    "CPC": 0b000001, "SBC": 0b000010, "ADD": 0b000011, "CPSE": 0b000100,
    "CP": 0b000101, "SUB": 0b000110, "ADC": 0b000111, "AND": 0b001000,
    "EOR": 0b001001, "OR": 0b001010, "MOV": 0b001011,
}
_R2_BY_PREFIX = {v: k for k, v in _R2_PREFIX.items()}

_IMM8_OP = {"CPI": 0x3, "SBCI": 0x4, "SUBI": 0x5, "ORI": 0x6,
            "ANDI": 0x7, "LDI": 0xE}
_IMM8_BY_OP = {v: k for k, v in _IMM8_OP.items()}

_RD_OP = {"COM": 0x0, "NEG": 0x1, "SWAP": 0x2, "INC": 0x3,
          "ASR": 0x5, "LSR": 0x6, "ROR": 0x7, "DEC": 0xA}
_RD_BY_OP = {v: k for k, v in _RD_OP.items()}

#: LD/ST pointer-mode nibbles within the 1001 00sd dddd oooo family.
_PTR_OP = {"Z+": 0x1, "-Z": 0x2, "Y+": 0x9, "-Y": 0xA,
           "X": 0xC, "X+": 0xD, "-X": 0xE}
_PTR_BY_OP = {v: k for k, v in _PTR_OP.items()}

_IOBIT_OP = {"CBI": 0, "SBIC": 1, "SBI": 2, "SBIS": 3}
_IOBIT_BY_OP = {v: k for k, v in _IOBIT_OP.items()}

_IMPLIED_WORD = {
    "NOP": 0x0000, "IJMP": 0x9409, "ICALL": 0x9509, "RET": 0x9508,
    "RETI": 0x9518, "SLEEP": 0x9588, "BREAK": 0x9598, "WDR": 0x95A8,
}
_IMPLIED_BY_WORD = {v: k for k, v in _IMPLIED_WORD.items()}

_ADIW_REGS = (24, 26, 28, 30)


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise EncodingError(message)


def _reg(value: int, lo: int = 0, hi: int = 31) -> int:
    _check(lo <= value <= hi, f"register r{value} out of range r{lo}..r{hi}")
    return value


def _imm(value: int, bits: int, what: str) -> int:
    _check(0 <= value < (1 << bits), f"{what} {value} does not fit {bits} bits")
    return value


def _simm(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    _check(lo <= value <= hi, f"{what} {value} out of range {lo}..{hi}")
    return value & ((1 << bits) - 1)


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def encode(instr: Instruction) -> Tuple[int, ...]:
    """Encode *instr* into one or two 16-bit flash words."""
    m, ops = instr.mnemonic, instr.operands
    try:
        fmt = OPCODES[m].fmt
    except KeyError:
        raise EncodingError(f"unknown mnemonic {m!r}") from None

    if fmt is Format.R2:
        d, r = _reg(ops[0]), _reg(ops[1])
        prefix = _R2_PREFIX[m]
        return ((prefix << 10) | ((r & 0x10) << 5) | (d << 4) | (r & 0x0F),)
    if fmt is Format.MUL:
        d, r = _reg(ops[0]), _reg(ops[1])
        return (0x9C00 | ((r & 0x10) << 5) | (d << 4) | (r & 0x0F),)
    if fmt is Format.MOVW:
        d, r = _reg(ops[0]), _reg(ops[1])
        _check(d % 2 == 0 and r % 2 == 0, "MOVW operands must be even registers")
        return (0x0100 | ((d // 2) << 4) | (r // 2),)
    if fmt is Format.RD:
        d = _reg(ops[0])
        return (0x9400 | (d << 4) | _RD_OP[m],)
    if fmt is Format.IMM8:
        d, k = _reg(ops[0], 16, 31), _imm(ops[1], 8, "immediate")
        return ((_IMM8_OP[m] << 12) | ((k & 0xF0) << 4)
                | ((d - 16) << 4) | (k & 0x0F),)
    if fmt is Format.ADIW:
        d, k = ops[0], _imm(ops[1], 6, "ADIW immediate")
        _check(d in _ADIW_REGS, f"ADIW register r{d} must be one of {_ADIW_REGS}")
        base = 0x9600 if m == "ADIW" else 0x9700
        return (base | ((k & 0x30) << 2) | (((d - 24) // 2) << 4) | (k & 0x0F),)
    if fmt is Format.LDST_DISP:
        d, ptr, q = _reg(ops[0]), ops[1], _imm(ops[2], 6, "displacement")
        _check(ptr in ("Y", "Z"), "LDD/STD pointer must be Y or Z")
        s = 1 if m == "STD" else 0
        y = 1 if ptr == "Y" else 0
        return (0x8000 | ((q & 0x20) << 8) | ((q & 0x18) << 7) | (s << 9)
                | (d << 4) | (y << 3) | (q & 0x07),)
    if fmt is Format.LDST_PTR:
        d, mode = _reg(ops[0]), ops[1]
        _check(mode in _PTR_OP, f"bad pointer mode {mode!r}")
        s = 1 if m == "ST" else 0
        return (0x9000 | (s << 9) | (d << 4) | _PTR_OP[mode],)
    if fmt is Format.LDST_DIRECT:
        d, k = _reg(ops[0]), _imm(ops[1], 16, "data address")
        s = 1 if m == "STS" else 0
        return (0x9000 | (s << 9) | (d << 4), k)
    if fmt is Format.PUSHPOP:
        d = _reg(ops[0])
        s = 1 if m == "PUSH" else 0
        return (0x9000 | (s << 9) | (d << 4) | 0xF,)
    if fmt is Format.LPM:
        d, mode = ops
        if mode == "LEGACY":
            _check(d == 0, "legacy LPM targets r0")
            return (0x95C8,)
        _check(mode in ("Z", "Z+"), f"bad LPM mode {mode!r}")
        return (0x9004 | (_reg(d) << 4) | (1 if mode == "Z+" else 0),)
    if fmt is Format.IO:
        if m == "IN":
            d, a = _reg(ops[0]), _imm(ops[1], 6, "I/O address")
            return (0xB000 | ((a & 0x30) << 5) | (d << 4) | (a & 0x0F),)
        a, r = _imm(ops[0], 6, "I/O address"), _reg(ops[1])
        return (0xB800 | ((a & 0x30) << 5) | (r << 4) | (a & 0x0F),)
    if fmt is Format.IOBIT:
        a, b = _imm(ops[0], 5, "I/O address"), _imm(ops[1], 3, "bit")
        return (0x9800 | (_IOBIT_OP[m] << 8) | (a << 3) | b,)
    if fmt is Format.REL12:
        k = _simm(ops[0], 12, "relative offset")
        return ((0xC000 if m == "RJMP" else 0xD000) | k,)
    if fmt is Format.BRANCH:
        s, k = _imm(ops[0], 3, "SREG bit"), _simm(ops[1], 7, "branch offset")
        base = 0xF000 if m == "BRBS" else 0xF400
        return (base | (k << 3) | s,)
    if fmt is Format.SKIP_REG:
        r, b = _reg(ops[0]), _imm(ops[1], 3, "bit")
        return ((0xFC00 if m == "SBRC" else 0xFE00) | (r << 4) | b,)
    if fmt is Format.TFLAG:
        d, b = _reg(ops[0]), _imm(ops[1], 3, "bit")
        return ((0xF800 if m == "BLD" else 0xFA00) | (d << 4) | b,)
    if fmt is Format.JMPCALL:
        k = _imm(ops[0], 22, "flash word address")
        base = 0x940C if m == "JMP" else 0x940E
        return (base | (((k >> 17) & 0x1F) << 4) | ((k >> 16) & 1), k & 0xFFFF)
    if fmt is Format.SREG_OP:
        s = _imm(ops[0], 3, "SREG bit")
        return ((0x9408 if m == "BSET" else 0x9488) | (s << 4),)
    if fmt is Format.IMPLIED:
        return (_IMPLIED_WORD[m],)
    raise EncodingError(f"unhandled format {fmt} for {m}")  # pragma: no cover


# -- decode ------------------------------------------------------------------

def decode(word: int, next_word: Optional[int] = None,
           address: int = -1) -> Instruction:
    """Decode one instruction starting at *word*.

    *next_word* must be supplied for 32-bit instructions (LDS/STS/JMP/CALL);
    passing ``None`` for one raises :class:`EncodingError`.
    """
    top4 = word >> 12

    if word == 0x0000:
        return Instruction("NOP", (), address)
    if (word & 0xFF00) == 0x0100:
        d, r = ((word >> 4) & 0xF) * 2, (word & 0xF) * 2
        return Instruction("MOVW", (d, r), address)
    prefix = word >> 10
    if prefix in _R2_BY_PREFIX:
        d = (word >> 4) & 0x1F
        r = ((word >> 5) & 0x10) | (word & 0x0F)
        return Instruction(_R2_BY_PREFIX[prefix], (d, r), address)
    if top4 in _IMM8_BY_OP:
        d = 16 + ((word >> 4) & 0x0F)
        k = ((word >> 4) & 0xF0) | (word & 0x0F)
        return Instruction(_IMM8_BY_OP[top4], (d, k), address)
    if (word & 0xD200) in (0x8000, 0x8200):  # 10q0 qqsd dddd yqqq
        q = ((word >> 8) & 0x20) | ((word >> 7) & 0x18) | (word & 0x07)
        d = (word >> 4) & 0x1F
        ptr = "Y" if word & 0x08 else "Z"
        m = "STD" if word & 0x0200 else "LDD"
        return Instruction(m, (d, ptr, q), address)
    if (word & 0xFC00) == 0x9000:  # LD/ST misc, LDS/STS, LPM, PUSH/POP
        store = bool(word & 0x0200)
        d = (word >> 4) & 0x1F
        op4 = word & 0x0F
        if op4 == 0x0:
            if next_word is None:
                raise EncodingError("LDS/STS needs a second word")
            return Instruction("STS" if store else "LDS",
                               (d, next_word), address)
        if op4 == 0xF:
            return Instruction("PUSH" if store else "POP", (d,), address)
        if not store and op4 in (0x4, 0x5):
            return Instruction("LPM", (d, "Z+" if op4 == 0x5 else "Z"), address)
        if op4 in _PTR_BY_OP:
            return Instruction("ST" if store else "LD",
                               (d, _PTR_BY_OP[op4]), address)
        raise EncodingError(f"bad LD/ST mode nibble {op4:#x} in {word:#06x}")
    if (word & 0xFE00) == 0x9400:
        result = _decode_94(word, next_word, address)
        if result is not None:
            return result
    if (word & 0xFF00) == 0x9600:
        d = 24 + 2 * ((word >> 4) & 0x3)
        k = ((word >> 2) & 0x30) | (word & 0x0F)
        return Instruction("ADIW", (d, k), address)
    if (word & 0xFF00) == 0x9700:
        d = 24 + 2 * ((word >> 4) & 0x3)
        k = ((word >> 2) & 0x30) | (word & 0x0F)
        return Instruction("SBIW", (d, k), address)
    if (word & 0xFC00) == 0x9800:
        a, b = (word >> 3) & 0x1F, word & 0x07
        return Instruction(_IOBIT_BY_OP[(word >> 8) & 0x3], (a, b), address)
    if (word & 0xFC00) == 0x9C00:
        d = (word >> 4) & 0x1F
        r = ((word >> 5) & 0x10) | (word & 0x0F)
        return Instruction("MUL", (d, r), address)
    if (word & 0xF000) == 0xB000:
        a = ((word >> 5) & 0x30) | (word & 0x0F)
        reg = (word >> 4) & 0x1F
        if word & 0x0800:
            return Instruction("OUT", (a, reg), address)
        return Instruction("IN", (reg, a), address)
    if top4 == 0xC:
        return Instruction("RJMP", (_sext(word, 12),), address)
    if top4 == 0xD:
        return Instruction("RCALL", (_sext(word, 12),), address)
    if (word & 0xF800) == 0xF000:
        s = word & 0x7
        k = _sext((word >> 3) & 0x7F, 7)
        m = "BRBS" if (word & 0xFC00) == 0xF000 else "BRBC"
        return Instruction(m, (s, k), address)
    if (word & 0xFC08) in (0xF800, 0xFA00, 0xFC00, 0xFE00):
        reg, b = (word >> 4) & 0x1F, word & 0x07
        m = {0xF800: "BLD", 0xFA00: "BST",
             0xFC00: "SBRC", 0xFE00: "SBRS"}[word & 0xFE08]
        return Instruction(m, (reg, b), address)
    raise EncodingError(f"cannot decode word {word:#06x}")


def _decode_94(word: int, next_word: Optional[int],
               address: int) -> Optional[Instruction]:
    """Decode the crowded ``1001 010x`` region (RD ops, jumps, misc)."""
    if word in _IMPLIED_BY_WORD:
        return Instruction(_IMPLIED_BY_WORD[word], (), address)
    if word == 0x95C8:
        return Instruction("LPM", (0, "LEGACY"), address)
    op4 = word & 0x0F
    if op4 in (0xC, 0xD, 0xE, 0xF):  # JMP / CALL
        if next_word is None:
            raise EncodingError("JMP/CALL needs a second word")
        k = ((((word >> 4) & 0x1F) << 1) | (word & 1)) << 16 | next_word
        return Instruction("JMP" if op4 < 0xE else "CALL", (k,), address)
    if (word & 0xFF8F) == 0x9408:
        return Instruction("BSET", ((word >> 4) & 0x7,), address)
    if (word & 0xFF8F) == 0x9488:
        return Instruction("BCLR", ((word >> 4) & 0x7,), address)
    if op4 in _RD_BY_OP:
        return Instruction(_RD_BY_OP[op4], ((word >> 4) & 0x1F,), address)
    return None


def instruction_words(word: int) -> int:
    """Return 2 if *word* starts a 32-bit instruction, else 1.

    Used by the assembler's first pass and by linear decoders to walk a
    flash image without fully decoding it.
    """
    if (word & 0xFC0F) in (0x9000, 0x9200):  # LDS / STS
        return 2
    if (word & 0xFE0C) == 0x940C:  # JMP / CALL
        return 2
    return 1
