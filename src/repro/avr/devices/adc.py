"""ADC with a deterministic synthetic signal source.

A real MICA2 samples microphone/magnetometer/photo channels.  We feed the
converter a seeded, reproducible waveform: a coarse triangle wave plus
LFSR noise, chosen so amplitude-style workloads see realistic variation
without any dependency on non-deterministic randomness.

Conversion timing follows the ATmega128L: a conversion takes 13 ADC
clocks; with the default /64 prescaler that is 832 CPU cycles.  Programs
start a conversion by setting ``ADSC`` in ``ADCSRA`` and poll until the
bit clears (or wait for ``ADIF``).  Starting a conversion schedules a
one-shot completion event on the CPU's event queue; a status read that
lands after the due cycle but before the block boundary completes the
conversion lazily, so polling observes the exact same timing.
"""

from __future__ import annotations

from typing import Optional

from .. import ioports

CONVERSION_ADC_CLOCKS = 13


class Adc:
    """Successive-approximation ADC, 10-bit results in ADCL/ADCH."""

    def __init__(self, prescaler: int = 64, seed: int = 0xACE1):
        self.prescaler = prescaler
        self.seed = seed & 0xFFFF or 0xACE1
        self._lfsr = self.seed
        self.samples_taken = 0
        self.channel = 0
        self._cpu = None
        self._busy_until: Optional[int] = None
        self._result = 0
        self._event = None

    @property
    def conversion_cycles(self) -> int:
        return CONVERSION_ADC_CLOCKS * self.prescaler

    def attach(self, cpu) -> None:
        self._cpu = cpu
        mem = cpu.mem
        mem.install_read_hook(ioports.ADCL, lambda: self._result & 0xFF)
        mem.install_read_hook(ioports.ADCH, lambda: self._result >> 8)
        mem.install_read_hook(ioports.ADCSRA, self._read_status)
        mem.install_write_hook(ioports.ADCSRA, self._write_control)
        mem.install_read_hook(ioports.ADMUX, lambda: self.channel)
        mem.install_write_hook(ioports.ADMUX, self._write_mux)

    # -- signal generation ----------------------------------------------------

    def _next_noise(self) -> int:
        # 16-bit Fibonacci LFSR (taps 16, 14, 13, 11).
        lfsr = self._lfsr
        bit = ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1
        self._lfsr = (lfsr >> 1) | (bit << 15)
        return self._lfsr & 0x3F  # 6 bits of noise

    def sample_value(self) -> int:
        """Next 10-bit sample: triangle wave + LFSR noise."""
        index = self.samples_taken
        self.samples_taken += 1
        period = 64
        phase = index % period
        triangle = phase * 2 if phase < period // 2 else \
            (period - phase) * 2
        base = 300 + triangle * 8  # swings 300..~812
        return min(0x3FF, base + self._next_noise())

    # -- register behaviour ------------------------------------------------------

    def _read_status(self) -> int:
        status = 1 << ioports.ADEN
        if self._busy_until is not None:
            if self._cpu.cycles >= self._busy_until:
                self._complete()
            else:
                status |= 1 << ioports.ADSC
        if self._busy_until is None and self.samples_taken:
            status |= 1 << ioports.ADIF
        return status

    def _write_control(self, value: int) -> None:
        if value & (1 << ioports.ADSC) and self._busy_until is None:
            self._busy_until = self._cpu.cycles + self.conversion_cycles
            self._event = self._cpu.events.schedule(self._busy_until,
                                                    self._on_complete)

    def _write_mux(self, value: int) -> None:
        self.channel = value & 0x1F

    def _complete(self) -> None:
        self._result = self.sample_value()
        self._busy_until = None
        self._cpu.events.cancel(self._event)
        self._event = None

    def _on_complete(self) -> None:
        """Scheduled completion (a status read may have beaten us to it)."""
        if self._busy_until is not None:
            self._complete()
