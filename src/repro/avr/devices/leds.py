"""LED device (re-exported from radio module's sibling definition).

Kept as its own module for discoverability; the implementation lives
here to avoid a circular import.
"""

from __future__ import annotations

from typing import List

from .. import ioports


class Leds:
    """Three debug LEDs on PORTA, recording every state change."""

    def __init__(self):
        self.state = 0
        self.changes: List[int] = []
        self._cpu = None

    def attach(self, cpu) -> None:
        self._cpu = cpu
        cpu.mem.install_read_hook(ioports.PORTA, lambda: self.state)
        cpu.mem.install_write_hook(ioports.PORTA, self._write)

    def _write(self, value: int) -> None:
        self.state = value & 0x07
        self.changes.append(self.state)
