"""External flash (AT45DB041-class), the mote's bulk storage.

MICA2 motes carry a 512 KB serial dataflash.  The properties that
matter for OS design — and that doom the copy-on-switch strawman the
paper dismisses in Section I — are its timing and endurance:

* programming a page takes *milliseconds* ("writing the external FLASH
  takes more than 10 milliseconds on a MICA2");
* each page survives a limited number of erase cycles.

The device is exposed to Python-side OS models (the copy-on-switch
baseline) through a block API that charges CPU cycles on a host CPU and
tracks per-page erase counts.
"""

from __future__ import annotations

from typing import Dict

from ...errors import SimulationError

PAGE_BYTES = 264
NUM_PAGES = 2048  # ~512 KB

#: Cycles at 7.3728 MHz for one page program (≈14 ms erase+program on
#: the real part; the paper's ">10 ms" statement).
PAGE_WRITE_CYCLES = 81_000
#: Page reads stream over SPI: ~250 us per page.
PAGE_READ_CYCLES = 1_850
#: Manufacturer endurance rating: erase/program cycles per page.
PAGE_ENDURANCE = 10_000


class ExternalFlash:
    """Page-oriented dataflash with timing and wear accounting."""

    def __init__(self, pages: int = NUM_PAGES,
                 page_bytes: int = PAGE_BYTES):
        self.pages = pages
        self.page_bytes = page_bytes
        self._data: Dict[int, bytearray] = {}
        self.erase_counts: Dict[int, int] = {}
        self.writes = 0
        self.reads = 0

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.pages:
            raise SimulationError(f"flash page {page} out of range")

    def write_page(self, page: int, payload: bytes) -> int:
        """Program one page; returns the CPU cycles the operation costs.

        A page that exceeds its endurance rating raises — modeling the
        wear-out failure a copy-on-switch design would hit in minutes.
        """
        self._check_page(page)
        if len(payload) > self.page_bytes:
            raise SimulationError(
                f"payload of {len(payload)} exceeds page size")
        wear = self.erase_counts.get(page, 0) + 1
        if wear > PAGE_ENDURANCE:
            raise SimulationError(
                f"flash page {page} wore out after {PAGE_ENDURANCE} "
                f"erase cycles")
        self.erase_counts[page] = wear
        stored = bytearray(self.page_bytes)
        stored[:len(payload)] = payload
        self._data[page] = stored
        self.writes += 1
        return PAGE_WRITE_CYCLES

    def read_page(self, page: int) -> "tuple[bytes, int]":
        """Read one page; returns (data, CPU cycles)."""
        self._check_page(page)
        self.reads += 1
        data = bytes(self._data.get(page, bytes(self.page_bytes)))
        return data, PAGE_READ_CYCLES

    def pages_for(self, length: int) -> int:
        """Pages needed to store *length* bytes."""
        return -(-length // self.page_bytes)

    def write_blob(self, first_page: int, payload: bytes) -> int:
        """Write a multi-page blob; returns total CPU cycles."""
        cycles = 0
        for index in range(self.pages_for(len(payload))):
            chunk = payload[index * self.page_bytes:
                            (index + 1) * self.page_bytes]
            cycles += self.write_page(first_page + index, chunk)
        return cycles

    def read_blob(self, first_page: int, length: int) -> "tuple[bytes, int]":
        cycles = 0
        out = bytearray()
        for index in range(self.pages_for(length)):
            data, cost = self.read_page(first_page + index)
            out.extend(data)
            cycles += cost
        return bytes(out[:length]), cycles

    def max_wear(self) -> int:
        return max(self.erase_counts.values(), default=0)

    # -- CPU-device protocol (unused: accessed via the OS model) ----------------

    def attach(self, cpu) -> None:
        self._cpu = cpu
