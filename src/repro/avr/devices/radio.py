"""Byte-oriented radio device standing in for the mote radio path.

On a MICA2 the CC1000 radio is fed byte-by-byte; the behaviourally
relevant properties for OS benchmarks are a data register with ready
flags and a per-byte latency.  Transmitted bytes are logged *with their
TX cycle* so the network simulator can compute exact arrival times;
received bytes are injected from the host side (``deliver``), which is
how multi-node setups wire one node's TX log into another's RX queue.

Each byte written while ready schedules a one-shot "transmitter idle"
event on the CPU's event queue, so a node sleeping through a TX
completes it at the exact cycle instead of at a polling boundary.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .. import ioports

#: CPU cycles to clock one byte out at ~38.4 kbaud on a 7.37 MHz MCU.
DEFAULT_BYTE_CYCLES = 1920

#: UCSR0A bit signalling a received byte is waiting (real AVR: RXC).
RXC = 7


class Radio:
    """Radio front end mapped at UDR0/UCSR0A (TX log + RX queue)."""

    def __init__(self, byte_cycles: int = DEFAULT_BYTE_CYCLES):
        self.byte_cycles = byte_cycles
        self.transmitted: List[int] = []
        self.tx_cycles: List[int] = []  # TX cycle of transmitted[i]
        self.rx_queue: Deque[int] = deque()
        self._cpu = None
        self._busy_until: Optional[int] = None
        self._event = None

    def attach(self, cpu) -> None:
        self._cpu = cpu
        cpu.mem.install_read_hook(ioports.UCSR0A, self._read_status)
        cpu.mem.install_write_hook(ioports.UDR0, self._write_data)
        cpu.mem.install_read_hook(ioports.UDR0, self._read_data)

    def deliver(self, payload: bytes) -> None:
        """Host-side injection: queue *payload* for the node to read."""
        self.rx_queue.extend(payload)

    @property
    def packets(self) -> bytes:
        return bytes(self.transmitted)

    def _ready(self) -> bool:
        return self._busy_until is None or \
            self._cpu.cycles >= self._busy_until

    def _read_status(self) -> int:
        status = 0
        if self._ready():
            status |= (1 << ioports.UDRE) | (1 << ioports.TXC)
        if self.rx_queue:
            status |= 1 << RXC
        return status

    def _write_data(self, value: int) -> None:
        # Writes while busy are dropped, as on real hardware.
        if not self._ready():
            return
        self.transmitted.append(value)
        self.tx_cycles.append(self._cpu.cycles)
        self._busy_until = self._cpu.cycles + self.byte_cycles
        self._cpu.events.cancel(self._event)
        self._event = self._cpu.events.schedule(self._busy_until,
                                                self._tx_done)

    def _tx_done(self) -> None:
        self._busy_until = None
        self._event = None

    def _read_data(self) -> int:
        if self.rx_queue:
            return self.rx_queue.popleft()
        return 0
