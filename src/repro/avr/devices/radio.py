"""Byte-oriented radio device standing in for the mote radio path.

On a MICA2 the CC1000 radio is fed byte-by-byte; the behaviourally
relevant properties for OS benchmarks are a data register with ready
flags and a per-byte latency.  Transmitted bytes are logged so tests
and workloads can verify packet contents end-to-end; received bytes are
injected from the host side (``deliver``), which is how multi-node
setups wire one node's TX log into another's RX queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .. import ioports

#: CPU cycles to clock one byte out at ~38.4 kbaud on a 7.37 MHz MCU.
DEFAULT_BYTE_CYCLES = 1920

#: UCSR0A bit signalling a received byte is waiting (real AVR: RXC).
RXC = 7


class Radio:
    """Radio front end mapped at UDR0/UCSR0A (TX log + RX queue)."""

    def __init__(self, byte_cycles: int = DEFAULT_BYTE_CYCLES):
        self.byte_cycles = byte_cycles
        self.transmitted: List[int] = []
        self.rx_queue: Deque[int] = deque()
        self._cpu = None
        self._busy_until: Optional[int] = None

    def attach(self, cpu) -> None:
        self._cpu = cpu
        cpu.mem.install_read_hook(ioports.UCSR0A, self._read_status)
        cpu.mem.install_write_hook(ioports.UDR0, self._write_data)
        cpu.mem.install_read_hook(ioports.UDR0, self._read_data)

    def deliver(self, payload: bytes) -> None:
        """Host-side injection: queue *payload* for the node to read."""
        self.rx_queue.extend(payload)

    @property
    def packets(self) -> bytes:
        return bytes(self.transmitted)

    def _ready(self) -> bool:
        return self._busy_until is None or \
            self._cpu.cycles >= self._busy_until

    def _read_status(self) -> int:
        status = 0
        if self._ready():
            status |= (1 << ioports.UDRE) | (1 << ioports.TXC)
        if self.rx_queue:
            status |= 1 << RXC
        return status

    def _write_data(self, value: int) -> None:
        # Writes while busy are dropped, as on real hardware.
        if not self._ready():
            return
        self.transmitted.append(value)
        self._busy_until = self._cpu.cycles + self.byte_cycles

    def _read_data(self) -> int:
        if self.rx_queue:
            return self.rx_queue.popleft()
        return 0

    def service(self, cpu) -> None:
        if self._busy_until is not None and cpu.cycles >= self._busy_until:
            self._busy_until = None

    def next_event_cycle(self, cpu) -> Optional[int]:
        return self._busy_until
