"""Byte-oriented radio device standing in for the mote radio path.

On a MICA2 the CC1000 radio is fed byte-by-byte; the behaviourally
relevant properties for OS benchmarks are a data register with ready
flags and a per-byte latency.  Transmitted bytes are logged *with their
TX cycle* so the network simulator can compute exact arrival times;
received bytes are injected from the host side (``deliver``), which is
how multi-node setups wire one node's TX log into another's RX queue.

The TX log is a bounded ring (``tx_log_limit`` entries, default 64 Ki):
long network runs keep a window of recent traffic instead of growing
without bound.  Every byte still gets a monotonically increasing
sequence number (``tx_seq`` counts all bytes ever clocked out), so the
network ferry reads incrementally with :meth:`tx_since` and can tell
when eviction outran its cursor; ``tx_log_dropped`` counts evictions.

Each byte written while ready schedules a one-shot "transmitter idle"
event on the CPU's event queue, so a node sleeping through a TX
completes it at the exact cycle instead of at a polling boundary.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, List, Tuple

from .. import ioports

#: CPU cycles to clock one byte out at ~38.4 kbaud on a 7.37 MHz MCU.
DEFAULT_BYTE_CYCLES = 1920

#: Retained TX log entries before the ring starts evicting.
DEFAULT_TX_LOG_LIMIT = 1 << 16

#: UCSR0A bit signalling a received byte is waiting (real AVR: RXC).
RXC = 7


class Radio:
    """Radio front end mapped at UDR0/UCSR0A (TX ring + RX queue)."""

    def __init__(self, byte_cycles: int = DEFAULT_BYTE_CYCLES,
                 tx_log_limit: int = DEFAULT_TX_LOG_LIMIT):
        self.byte_cycles = byte_cycles
        self.tx_log_limit = tx_log_limit
        #: (sequence, value, tx_cycle), oldest first, bounded.
        self._tx_ring: Deque[Tuple[int, int, int]] = \
            deque(maxlen=tx_log_limit)
        self.tx_seq = 0          # bytes ever transmitted
        self.tx_log_dropped = 0  # entries evicted from the ring
        self.rx_queue: Deque[int] = deque()
        self._cpu = None
        self._busy_until = None
        self._event = None

    def attach(self, cpu) -> None:
        self._cpu = cpu
        cpu.mem.install_read_hook(ioports.UCSR0A, self._read_status)
        cpu.mem.install_write_hook(ioports.UDR0, self._write_data)
        cpu.mem.install_read_hook(ioports.UDR0, self._read_data)

    def deliver(self, payload: bytes) -> None:
        """Host-side injection: queue *payload* for the node to read."""
        self.rx_queue.extend(payload)

    # -- TX log ---------------------------------------------------------------

    def tx_since(self, seq: int) -> Tuple[List[Tuple[int, int, int]], int]:
        """Log entries with sequence >= *seq*, oldest first.

        Returns ``(entries, missed)`` where each entry is
        ``(sequence, value, tx_cycle)`` and *missed* counts bytes the
        ring evicted before the caller got to them (0 while the reader
        keeps up).  Advance the cursor to :attr:`tx_seq` after reading.
        """
        oldest = self.tx_seq - len(self._tx_ring)
        start = max(seq, oldest)
        fresh = list(islice(self._tx_ring, start - oldest, None))
        return fresh, start - seq

    @property
    def transmitted(self) -> List[int]:
        """Values still in the TX ring (the full log while it fits)."""
        return [value for _, value, _ in self._tx_ring]

    @property
    def tx_cycles(self) -> List[int]:
        """TX cycle of each retained log entry."""
        return [cycle for _, _, cycle in self._tx_ring]

    @property
    def packets(self) -> bytes:
        return bytes(value for _, value, _ in self._tx_ring)

    # -- register hooks -------------------------------------------------------

    def _ready(self) -> bool:
        return self._busy_until is None or \
            self._cpu.cycles >= self._busy_until

    def _read_status(self) -> int:
        status = 0
        if self._ready():
            status |= (1 << ioports.UDRE) | (1 << ioports.TXC)
        if self.rx_queue:
            status |= 1 << RXC
        return status

    def _write_data(self, value: int) -> None:
        # Writes while busy are dropped, as on real hardware.
        if not self._ready():
            return
        if len(self._tx_ring) == self.tx_log_limit:
            self.tx_log_dropped += 1  # deque maxlen evicts the oldest
        self._tx_ring.append((self.tx_seq, value, self._cpu.cycles))
        self.tx_seq += 1
        self._busy_until = self._cpu.cycles + self.byte_cycles
        self._cpu.events.cancel(self._event)
        self._event = self._cpu.events.schedule(self._busy_until,
                                                self._tx_done)

    def _tx_done(self) -> None:
        self._busy_until = None
        self._event = None

    def _read_data(self) -> int:
        if self.rx_queue:
            return self.rx_queue.popleft()
        return 0
