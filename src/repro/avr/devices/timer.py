"""Hardware timers.

Timer values are computed lazily from the CPU cycle counter instead of
being ticked per instruction, which keeps the simulator fast.  Timer3
additionally supports an output-compare interrupt — the wake-up source
for natively-executing periodic programs (under SenSmart the kernel owns
Timer3 and applications reach it only through intercepted accesses).

Compare matches are :class:`~repro.sim.Event` callbacks on the CPU's
event queue: arming (an ``OCR3A``/``TCCR3B`` write) cancels any pending
match and schedules the next one at its exact cycle; the fire callback
re-arms for the following counter wrap, as on real hardware.
"""

from __future__ import annotations

from typing import Optional

from .. import ioports


class _TimerBase:
    """Common lazy-counter machinery."""

    def __init__(self, prescaler: int = 8):
        self.prescaler = prescaler
        self._cpu = None
        self._base_cycle = 0  # cycle at which the counter read 0

    def attach(self, cpu) -> None:
        self._cpu = cpu
        self._base_cycle = cpu.cycles
        self._install_hooks(cpu)

    def count(self) -> int:
        elapsed = self._cpu.cycles - self._base_cycle
        return elapsed // self.prescaler

    def reset_to(self, value: int) -> None:
        """Make the counter read *value* at the current cycle."""
        self._base_cycle = self._cpu.cycles - value * self.prescaler

    def _install_hooks(self, cpu) -> None:
        raise NotImplementedError


class Timer0(_TimerBase):
    """8-bit timer/counter available to applications (TCNT0)."""

    def __init__(self, prescaler: int = 32):
        super().__init__(prescaler)

    def _install_hooks(self, cpu) -> None:
        cpu.mem.install_read_hook(ioports.TCNT0, lambda: self.count() & 0xFF)
        cpu.mem.install_write_hook(ioports.TCNT0,
                                   lambda value: self.reset_to(value))


class Timer3(_TimerBase):
    """16-bit timer with output-compare interrupt (the kernel's clock).

    Reading ``TCNT3L`` latches the high byte into ``TCNT3H``, as on real
    AVR hardware.  Writing ``OCR3A`` arms a compare event; when compare
    interrupts are enabled (bit 0 of ``TCCR3B`` in this simplified model)
    the event raises ``VECT_TIMER3_COMPA``, otherwise it just sets the
    ``ETIFR`` flag (bit 0) for polling.
    """

    def __init__(self, prescaler: int = 8):
        super().__init__(prescaler)
        self.ocr3a = 0
        self.compare_armed = False
        self.irq_enabled = False
        self.flag = 0
        self._latched_high = 0
        self._fire_cycle: Optional[int] = None
        self._event = None

    def _install_hooks(self, cpu) -> None:
        mem = cpu.mem
        mem.install_read_hook(ioports.TCNT3L, self._read_low)
        mem.install_read_hook(ioports.TCNT3H, lambda: self._latched_high)
        mem.install_write_hook(ioports.TCNT3L, self._write_low)
        mem.install_write_hook(ioports.TCNT3H, self._write_high)
        mem.install_read_hook(ioports.OCR3AL, lambda: self.ocr3a & 0xFF)
        mem.install_read_hook(ioports.OCR3AH, lambda: self.ocr3a >> 8)
        mem.install_write_hook(ioports.OCR3AL, self._write_ocr_low)
        mem.install_write_hook(ioports.OCR3AH, self._write_ocr_high)
        mem.install_read_hook(ioports.TCCR3B,
                              lambda: 1 if self.irq_enabled else 0)
        mem.install_write_hook(ioports.TCCR3B, self._write_control)
        mem.install_read_hook(ioports.ETIFR, lambda: self.flag)
        mem.install_write_hook(ioports.ETIFR, self._write_flag)

    # -- register behaviour -------------------------------------------------

    def count16(self) -> int:
        return self.count() & 0xFFFF

    def _read_low(self) -> int:
        value = self.count16()
        self._latched_high = value >> 8
        return value & 0xFF

    def _write_low(self, value: int) -> None:
        self.reset_to((self._latched_high << 8) | value)

    def _write_high(self, value: int) -> None:
        self._latched_high = value

    def _write_ocr_low(self, value: int) -> None:
        self.ocr3a = (self.ocr3a & 0xFF00) | value
        self._arm()

    def _write_ocr_high(self, value: int) -> None:
        self.ocr3a = (value << 8) | (self.ocr3a & 0xFF)
        self._arm()

    def _write_control(self, value: int) -> None:
        self.irq_enabled = bool(value & 1)
        self._arm()

    def _write_flag(self, value: int) -> None:
        # Writing 1 clears the flag, as on real hardware.
        self.flag &= ~value

    def _arm(self) -> None:
        """(Re)schedule the compare-match event at its exact cycle."""
        self.compare_armed = True
        now = self.count()
        wrap = 0x10000
        delta = (self.ocr3a - (now % wrap)) % wrap
        if delta == 0:
            delta = wrap  # match at the *next* pass, as on real hardware
        self._fire_cycle = self._cpu.cycles + delta * self.prescaler
        events = self._cpu.events
        events.cancel(self._event)
        self._event = events.schedule(self._fire_cycle, self._fire)

    def _fire(self) -> None:
        self.flag |= 1
        if self.irq_enabled:
            self._cpu.raise_interrupt(ioports.VECT_TIMER3_COMPA)
        # The comparator keeps matching once per counter wrap, as on
        # real hardware; re-arm for the next pass.
        self._arm()

    @property
    def next_fire_cycle(self) -> Optional[int]:
        return self._fire_cycle if self.compare_armed else None
