"""Peripheral devices of the simulated mote."""

from .adc import Adc
from .leds import Leds
from .radio import Radio
from .timer import Timer0, Timer3

__all__ = ["Adc", "Leds", "Radio", "Timer0", "Timer3"]
