"""Data-space addresses of the simulated mote's I/O registers.

The map follows the ATmega128L conventions used on MICA2/MICAz motes:
I/O-space address ``A`` (used by ``IN``/``OUT``, 0..63) corresponds to
data-space address ``A + 0x20``.  Constants below are *data-space*
addresses; ``io_to_data``/``data_to_io`` convert.

Timer3 is the register block SenSmart reserves as the kernel's global
clock (paper Section IV-A): application accesses to it are intercepted by
the rewriter and redirected to the kernel's virtual timer service.
"""

from __future__ import annotations

IO_BASE = 0x20  # data-space address of I/O-space address 0

# Core registers -------------------------------------------------------------
SPL = 0x5D
SPH = 0x5E
SREG = 0x5F

# Timer0: 8-bit timer, available to applications ------------------------------
TCNT0 = 0x52
TCCR0 = 0x53

# Timer3: 16-bit timer, reserved by the SenSmart kernel ------------------------
OCR3AL = 0x86
OCR3AH = 0x87
TCNT3L = 0x88
TCNT3H = 0x89
TCCR3B = 0x8A
ETIFR = 0x7C

#: All data-space addresses belonging to the Timer3 block (the rewriter
#: patches any instruction that statically addresses one of these).
TIMER3_ADDRESSES = frozenset(
    {OCR3AL, OCR3AH, TCNT3L, TCNT3H, TCCR3B, ETIFR})

# ADC --------------------------------------------------------------------------
ADCL = 0x24
ADCH = 0x25
ADCSRA = 0x26
ADMUX = 0x27

#: ADCSRA bits.
ADEN = 7   # ADC enable
ADSC = 6   # start conversion; reads 1 while a conversion is in progress
ADIF = 4   # conversion complete flag

# UART0 — the byte pipe the mote's radio stack feeds (CC1000 via SPI on a
# real MICA2; a byte-oriented TX register is the behaviourally relevant part).
UDR0 = 0x2C
UCSR0A = 0x2B

#: UCSR0A bits.
UDRE = 5   # data register empty (ready to accept a byte)
TXC = 6    # transmit complete

# LEDs (PORTA on MICA2) ---------------------------------------------------------
PORTA = 0x3B
DDRA = 0x3A

# Memory geometry -----------------------------------------------------------------
RAM_START = 0x100    # first SRAM byte after registers + I/O
RAM_END = 0x10FF     # last SRAM byte (4 KB internal SRAM)
DATA_SIZE = RAM_END + 1
FLASH_WORDS = 0x10000  # 128 KB program memory

# Interrupt vectors (word addresses) — a compact layout for the simulator.
VECT_RESET = 0x0000
VECT_TIMER0_OVF = 0x0004
VECT_TIMER3_COMPA = 0x0008
VECT_ADC = 0x000C
VECT_USART_TX = 0x0010


def io_to_data(io_address: int) -> int:
    """Convert an ``IN``/``OUT`` I/O-space address to a data-space address."""
    return io_address + IO_BASE


def data_to_io(data_address: int) -> int:
    """Convert a data-space address to an I/O-space address."""
    return data_address - IO_BASE
