"""Linear disassembler for flash images.

Used by diagnostics, the rewriter's listings, and tests that check the
naturalized binary against expectations.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from .encoding import EncodingError, decode, instruction_words
from .instruction import Instruction
from .isa import Format


def iter_instructions(words: Sequence[int], origin: int = 0,
                      ) -> Iterator[Tuple[int, Optional[Instruction], int]]:
    """Yield ``(word_address, instruction_or_None, raw_word)`` tuples.

    Words that do not decode yield ``None`` for the instruction (data
    words, trampoline metadata, erased flash).
    """
    index = 0
    while index < len(words):
        address = origin + index
        word = words[index]
        next_word = words[index + 1] if index + 1 < len(words) else None
        try:
            instruction = decode(word, next_word, address)
        except EncodingError:
            yield address, None, word
            index += 1
            continue
        yield address, instruction, word
        index += instruction.words


def disassemble(words: Sequence[int], origin: int = 0) -> List[str]:
    """Render *words* as an assembly listing, one line per entry."""
    lines = []
    for address, instruction, word in iter_instructions(words, origin):
        if instruction is None:
            lines.append(f"{address:#06x}: .dw {word:#06x}")
        else:
            lines.append(f"{address:#06x}: {format_instruction(instruction)}")
    return lines


def format_instruction(ins: Instruction) -> str:
    """Pretty-print one instruction in assembler syntax."""
    m, ops = ins.mnemonic, ins.operands
    fmt = ins.opspec.fmt
    if fmt in (Format.R2, Format.MUL, Format.MOVW):
        return f"{m} r{ops[0]}, r{ops[1]}"
    if fmt in (Format.RD, Format.PUSHPOP):
        return f"{m} r{ops[0]}"
    if fmt in (Format.IMM8, Format.ADIW):
        return f"{m} r{ops[0]}, {ops[1]:#04x}"
    if fmt is Format.LDST_DISP:
        if m == "LDD":
            return f"LDD r{ops[0]}, {ops[1]}+{ops[2]}"
        return f"STD {ops[1]}+{ops[2]}, r{ops[0]}"
    if fmt is Format.LDST_PTR:
        if m == "LD":
            return f"LD r{ops[0]}, {ops[1]}"
        return f"ST {ops[1]}, r{ops[0]}"
    if fmt is Format.LDST_DIRECT:
        if m == "LDS":
            return f"LDS r{ops[0]}, {ops[1]:#06x}"
        return f"STS {ops[1]:#06x}, r{ops[0]}"
    if fmt is Format.LPM:
        if ops[1] == "LEGACY":
            return "LPM"
        return f"LPM r{ops[0]}, {ops[1]}"
    if fmt is Format.IO:
        if m == "IN":
            return f"IN r{ops[0]}, {ops[1]:#04x}"
        return f"OUT {ops[0]:#04x}, r{ops[1]}"
    if fmt is Format.IOBIT:
        return f"{m} {ops[0]:#04x}, {ops[1]}"
    if fmt is Format.REL12:
        suffix = f"  ; -> {ins.branch_target():#06x}" if ins.address >= 0 \
            else ""
        return f"{m} .{ops[0]:+d}{suffix}"
    if fmt is Format.BRANCH:
        suffix = f"  ; -> {ins.branch_target():#06x}" if ins.address >= 0 \
            else ""
        return f"{m} {ops[0]}, .{ops[1]:+d}{suffix}"
    if fmt in (Format.SKIP_REG, Format.TFLAG):
        return f"{m} r{ops[0]}, {ops[1]}"
    if fmt is Format.JMPCALL:
        return f"{m} {ops[0]:#06x}"
    if fmt is Format.SREG_OP:
        return f"{m} {ops[0]}"
    return m


def code_span_words(words: Sequence[int]) -> int:
    """Number of words a linear decode walks before hitting invalid data."""
    count = 0
    index = 0
    while index < len(words):
        try:
            decode(words[index],
                   words[index + 1] if index + 1 < len(words) else None)
        except EncodingError:
            break
        step = instruction_words(words[index])
        index += step
        count += step
    return count
