"""Trace JIT: direct-threaded chaining of compiled superblocks.

The superblock tier (:meth:`AvrCpu._fuse_block`) compiles straight-line
runs but still returns to the dispatch loop between every block: a hot
multi-block loop pays a full dispatch round-trip — limit checks, event
check, IRQ check, attribute traffic on ``cycles``/``instret``/``sreg`` —
per *block* instead of per loop.  This module chains blocks whose
terminators are direct transfers (unconditional jumps, conditional
branches, and the specialized trap fast paths) into one ``exec``-compiled
closure, so the whole loop executes with locals-only state:

* ``cy``/``n``/``sr`` shadow ``cycles``/``instret``/``sreg``;
* every *seam* between chained blocks replicates the dispatch loop's
  exact-stop check (``da``/``mi``/``mc``), so limits, due events and
  ``until()`` observe bit-identical boundaries;
* specialized trap sites (see :class:`~repro.kernel.specialize
  .TrapSpecializer`) chain through their fast arms; every slow arm
  flushes the locals and exits through the generic dispatch, exactly as
  a stand-alone specialized block would;
* one task/epoch guard is hoisted to trace entry (all chained sites
  belong to one task, and nothing mid-trace can retire the task or move
  a region), deoptimizing to a generic execution of the head block;
* a backward-branch trap that targets its own block start is
  *strip-mined*: the iteration count to the next observable boundary is
  computed up front and the loop body runs that many times with no
  per-iteration limit checks at all;
* SREG liveness (per-mnemonic masks from
  :mod:`repro.analysis.static.liveness`) elides flag computation that no
  successor inside the trace can observe, and defers a branch-feeding
  member's flags past the branch test — the test reads the result
  predicate directly and the flag lines materialize only on trace exits
  that did not kill them.

Mid-trace safety rests on the same invariants as superblock fusion:
members never touch I/O, SP (outside specialized trap code), or the I
flag, so no event can fire, no interrupt can become deliverable, and no
device state can change between seams; SEI, RETI, ``OUT`` to SREG,
skips, indirect jumps and calls all end a trace.

Compiled traces are shared across CPUs through the in-process
:class:`~repro.avr.cpu.SuperblockCache` (key-prefixed ``"trace"``) and,
when a :class:`TraceStore` is configured, persisted to disk as *source*
plus the per-site specialization keys — never code objects — keyed by
flash fingerprint, memory size and trap ranges.  A warm process compiles
nothing: it recompiles the stored source, which is cheap and versioned;
corrupt, stale or mismatched entries fall back to a clean recompile.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.static.liveness import sreg_effects
from ..fingerprint import content_key
from ..errors import InvalidInstruction, MemoryFault
from .cpu import (_ASR_TABLE, _DEC_TABLE, _INC_TABLE, _LOGIC_TABLE,
                  _LSR_TABLE, _NEG_TABLE, _ROR_TABLES, _CachedBlock,
                  _add_table, _sub_row, _sub_table)

#: Maximum chained blocks per trace (bounds compile time and the code
#: size of the generated closure; loops longer than this still trace —
#: the tail exit re-enters the dispatch loop, which starts a new trace).
_MAX_TRACE_BLOCKS = 8

#: Strip-mining cap: bounds a single uninterrupted run of a self-loop
#: (16M iterations) so ``im`` stays a small int even under infinite run
#: limits.
_MAX_STRIP = 16_777_216

#: On-disk artifact format version; any change to the generated source
#: conventions or the artifact schema must bump this.
STORE_VERSION = 1


@dataclass
class TraceStats:
    """Observability for tests, benchmarks and ``sensmart run --stats``."""

    compiled: int = 0      # traces compiled from scratch in this process
    declined: int = 0      # entry points where chaining was not worthwhile
    cache_hits: int = 0    # rebinds served by the in-process cache
    store_hits: int = 0    # recompiles served by the persistent store
    store_misses: int = 0  # store lookups that found no usable artifact


def _base_ns(cpu) -> dict:
    """The namespace every generated trace closure is exec'd against."""
    return {
        "cpu": cpu, "r": cpu.r, "mem": cpu.mem.data,
        "flash": cpu.flash, "profile": None,
        "lf": _LOGIC_TABLE, "incf": _INC_TABLE, "decf": _DEC_TABLE,
        "lsrf": _LSR_TABLE, "asrf": _ASR_TABLE, "negf": _NEG_TABLE,
        "rorf0": _ROR_TABLES[0], "rorf1": _ROR_TABLES[1],
    }


#: Flag tables a fused member binds, by mnemonic -> (prefix, kind, cin).
#: SUBI/CPI/SBCI also need the immediate operand and are handled apart.
_TABLE_MNEMONICS = {
    "ADD": (("t", "add", 0),),
    "ADC": (("t", "add", 0), ("u", "add", 1)),
    "SUB": (("t", "sub", 0),),
    "CP": (("t", "sub", 0),),
    "SBC": (("t", "sub", 0), ("u", "sub", 1)),
    "CPC": (("t", "sub", 0), ("u", "sub", 1)),
}


def _build_tables(manifest) -> dict:
    """Rebuild the site-specific flag tables named by a stored artifact."""
    tables = {}
    for entry in manifest:
        name, kind = entry[0], entry[1]
        if kind == "add":
            tables[name] = _add_table(entry[2])
        elif kind == "sub":
            tables[name] = _sub_table(entry[2])
        elif kind == "subrow":
            tables[name] = _sub_row(entry[2], entry[3])
        else:
            raise ValueError(f"unknown table kind {kind!r}")
    return tables


def _ind(lines, depth: int = 1) -> List[str]:
    pad = "    " * depth
    return [pad + line for line in lines]


class _Member:
    """One fused instruction inside a trace node."""

    __slots__ = ("effect", "flags", "cycles", "touches", "preds",
                 "reads", "writes", "elided")

    def __init__(self, effect, flags, cycles, touches, preds, reads,
                 writes):
        self.effect = effect    # register/memory effect lines
        self.flags = flags      # separable SREG update lines
        self.cycles = cycles
        self.touches = touches  # any line references the sr local
        self.preds = preds      # flag-bit mask -> predicate expression
        self.reads = reads      # architectural SREG read mask
        self.writes = writes    # architectural SREG write mask
        self.elided = False     # flag lines dropped (dead inside node)


class _Node:
    """One chained block: members plus a classified terminator."""

    __slots__ = ("start", "members", "count", "cost", "kind", "facts",
                 "cont", "bit", "branch_if_set", "taken", "fall",
                 "target", "jcycles", "nat_target", "strip", "deferred",
                 "strip_elide", "kind_index")

    def __init__(self, start, members):
        self.start = start
        self.members = members
        self.count = len(members)
        self.cost = sum(m.cycles for m in members)
        self.kind = None        # "brcond" | "jmp" | "trap"
        self.facts = None       # TraceFacts for trap terminators
        self.cont = None        # in-trace successor address, or None
        self.bit = None
        self.branch_if_set = False
        self.taken = None
        self.fall = None
        self.target = None
        self.jcycles = 0
        self.nat_target = None
        self.strip = False       # self-looping branch trap: strip-mine
        self.deferred = False    # last member's flags deferred past test
        self.strip_elide = False
        self.kind_index = None   # index into the per-kind count locals


#: Default cap on files a :class:`TraceStore` directory may hold; the
#: ``SENSMART_TRACE_STORE_MAX`` environment variable overrides it.
_DEFAULT_STORE_MAX_FILES = 256


@dataclass
class TraceStoreStats:
    """On-disk store traffic, shown by ``sensmart run --stats``."""

    writes: int = 0     # files written (one per image, rewritten per put)
    evictions: int = 0  # files removed to enforce the size bound
    corrupt: int = 0    # files present but unusable (bad JSON, version
                        # or fingerprint mismatch) — served as misses


class TraceStore:
    """Persistent compiled-trace artifacts, one JSON file per image.

    Artifacts are generated Python *source* plus the data needed to
    rebind it (flag-table manifest, chained trap sites, composite spec
    key) — never pickled code objects, so the store is portable across
    Python versions and a stale or corrupt file can always be ignored.
    Writes are atomic (temp file + ``os.replace``) and best-effort: an
    unwritable store degrades to a per-process compile, never an error.

    The directory is bounded: at most *max_files* image files live in
    it, evicted LRU-ish by modification time (every load of a file
    refreshes its mtime, so hot images survive and the fleet's
    long-dead images age out).
    """

    def __init__(self, path: str, max_files: Optional[int] = None):
        self.path = path
        if max_files is None:
            try:
                max_files = int(os.environ.get(
                    "SENSMART_TRACE_STORE_MAX", _DEFAULT_STORE_MAX_FILES))
            except ValueError:
                max_files = _DEFAULT_STORE_MAX_FILES
        self.max_files = max_files
        self.stats = TraceStoreStats()
        self._cache: Dict[str, dict] = {}  # filename -> traces dict

    def _file_for(self, base) -> str:
        fingerprint, mem_size, trap_ranges = base
        tag = content_key(trap_ranges, digest_size=6)
        return os.path.join(self.path,
                            f"{fingerprint[:24]}_{mem_size}_{tag}.json")

    def load(self, base) -> dict:
        """``{str(pc): {repr(spec_key): artifact}}`` for *base* (may be
        empty).  Any read error — missing file, bad JSON, version or
        fingerprint mismatch — is a miss, never an exception."""
        filename = self._file_for(base)
        traces = self._cache.get(filename)
        if traces is None:
            traces = self._read(filename, base)
            self._cache[filename] = traces
            try:
                os.utime(filename)  # LRU touch: this image is in use
            except OSError:
                pass
        return traces

    def _read(self, filename: str, base) -> dict:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            return {}
        except ValueError:
            self.stats.corrupt += 1
            return {}
        if not isinstance(payload, dict) \
                or payload.get("version") != STORE_VERSION \
                or payload.get("fingerprint") != base[0]:
            # The filename truncates the fingerprint, so it is verified
            # here; a mismatch of any part means the file is unusable.
            self.stats.corrupt += 1
            return {}
        traces = payload.get("traces")
        return traces if isinstance(traces, dict) else {}

    def put(self, base, pc: int, key_repr: str, artifact: dict) -> None:
        traces = self.load(base)
        traces.setdefault(str(pc), {})[key_repr] = artifact
        payload = {"version": STORE_VERSION, "fingerprint": base[0],
                   "traces": traces}
        filename = self._file_for(base)
        try:
            os.makedirs(self.path, exist_ok=True)
            tmp = filename + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, filename)
            self.stats.writes += 1
            self._evict(keep=filename)
        except OSError:
            pass  # best-effort: a read-only store still serves loads

    def _evict(self, keep: str) -> None:
        """Drop the oldest files once the directory exceeds the bound
        (never the file just written)."""
        try:
            entries = [os.path.join(self.path, name)
                       for name in os.listdir(self.path)
                       if name.endswith(".json")]
            if len(entries) <= self.max_files:
                return
            entries.sort(key=lambda p: (p != keep, -os.path.getmtime(p)))
            for victim in entries[self.max_files:]:
                os.remove(victim)
                self._cache.pop(victim, None)
                self.stats.evictions += 1
        except OSError:
            pass


class TraceCompiler:
    """Assembles, compiles, caches and rebinds multi-block traces.

    Installed on the CPU via :meth:`AvrCpu.set_tracer`;
    :meth:`entry_for` is consulted by ``_fuse_block`` before plain
    fusion and returns a ``(closure, icount, cost)`` dispatch entry (the
    head block's counts, so the dispatch-loop exact-stop check covers
    the head and seams cover the rest) or ``None`` to decline.
    """

    def __init__(self, cpu, specializer=None, store: Optional[TraceStore]
                 = None, max_blocks: int = _MAX_TRACE_BLOCKS):
        self.cpu = cpu
        self.specializer = specializer
        self.store = store
        self.stats = TraceStats()
        self.max_blocks = max_blocks

    # -- entry point --------------------------------------------------------------

    def entry_for(self, pc: int):
        cpu = self.cpu
        if cpu.profile is not None:
            return None  # profiled runs count per-PC: stay per-block
        mem_base = cpu._cache_base()
        if mem_base is not None:
            cache = cpu._block_cache
            group = cache.groups.get((("trace",) + mem_base, pc))
            hit = None
            if group:
                for block in group.values():
                    resolved = self._resolve_sites(block.trap)
                    if resolved is None:
                        continue
                    key, facts = resolved
                    if key == block.spec_key:
                        hit = (block, facts)
                        break
            if hit is not None:
                cache.hits += 1
                self.stats.cache_hits += 1
                block, facts = hit
                return self._rebind(block, facts)
            cache.misses += 1
        if self.store is not None:
            entry = self._from_store(pc, mem_base)
            if entry is not None:
                return entry
        return self._compile(pc, mem_base)

    # -- cache / store plumbing ---------------------------------------------------

    def _store_base(self):
        """Store key: computed fresh so the persistent store works even
        when in-process block sharing is disabled."""
        cpu = self.cpu
        return (cpu.flash.fingerprint(), cpu.mem.size,
                tuple(cpu._trap_ranges))

    def _resolve_sites(self, sites):
        """Current ``(composite_key, facts)`` for a stored site list, or
        None when any site can no longer be specialized the same way
        (kind retired, task dead, region gone, owner mismatch).

        The composite key appends the owner task's region epoch even
        when no chained site bakes region constants: a trace hoists
        every site under one entry guard, and guarding (and keying) the
        epoch uniformly means any externally-forced region change
        retires all of the owning task's traces through the normal
        deopt-then-recompile path.
        """
        if not sites:
            return ((), None), []
        specializer = self.specializer
        if specializer is None:
            return None
        facts = []
        keys = []
        task = None
        for site, target, is_call in sites:
            fact = specializer.trace_facts(self.cpu, site, target,
                                           is_call)
            if fact is None:
                return None
            if task is None:
                task = fact.task
            elif fact.task is not task:
                return None
            facts.append(fact)
            keys.append(fact.spec_key)
        return (tuple(keys), facts[0].epoch), facts

    def _bind_facts(self, ns: dict, facts) -> None:
        """Namespace bindings for the chained sites: the shared kernel
        objects plus ``kk{i}`` per distinct trap kind, in first-occurrence
        order over the chain (the emitter numbers its count locals the
        same way)."""
        kinds: List[str] = []
        for fact in facts:
            ns.update(fact.bindings)
            name = fact.kind.name
            if name not in kinds:
                ns[f"kk{len(kinds)}"] = fact.kind
                kinds.append(name)

    def _rebind(self, block: _CachedBlock, facts):
        ns = _base_ns(self.cpu)
        ns.update(block.tables)
        self._bind_facts(ns, facts)
        exec(block.code, ns)
        return (ns["_blk"], block.icount, block.cost)

    def _from_store(self, pc: int, mem_base):
        entries = self.store.load(self._store_base()).get(str(pc))
        if entries:
            for key_repr, artifact in entries.items():
                entry = self._load_artifact(pc, mem_base, key_repr,
                                            artifact)
                if entry is not None:
                    return entry
        self.stats.store_misses += 1
        return None

    def _load_artifact(self, pc, mem_base, key_repr, artifact):
        """Recompile one stored artifact, or None when it does not match
        the current specialization constants or is corrupt in any way."""
        try:
            sites = tuple((int(s), int(t), bool(c))
                          for s, t, c in artifact["sites"])
            resolved = self._resolve_sites(sites)
            if resolved is None:
                return None
            key, facts = resolved
            if repr(key) != key_repr:
                return None
            tables = _build_tables(artifact["tables"])
            source = artifact["source"]
            if not isinstance(source, str):
                return None
            icount = int(artifact["icount"])
            cost = int(artifact["cost"])
            code = compile(source, f"<trace@{pc:#06x}>", "exec")
            ns = _base_ns(self.cpu)
            ns.update(tables)
            self._bind_facts(ns, facts)
            exec(code, ns)
            entry = (ns["_blk"], icount, cost)
        except (KeyError, IndexError, TypeError, ValueError,
                SyntaxError):
            return None  # corrupt artifact: fall back to a recompile
        self.stats.store_hits += 1
        if mem_base is not None:
            self.cpu._block_cache.store(
                ("trace",) + mem_base, pc,
                _CachedBlock(code=code, tables=tables, icount=icount,
                             cost=cost, term_addr=None, trap=sites,
                             spec_key=key))
        return entry

    # -- compilation --------------------------------------------------------------

    def _compile(self, pc: int, mem_base):
        ns = _base_ns(self.cpu)
        manifest: List[list] = []
        built = self._assemble(pc, ns, manifest)
        if built is None:
            self.stats.declined += 1
            return None
        nodes, tail = built
        source = _Emitter(nodes, tail).source()
        facts = [node.facts for node in nodes if node.facts is not None]
        key = (tuple(fact.spec_key for fact in facts),
               facts[0].epoch if facts else None)
        sites = tuple((fact.site, fact.target, fact.is_call)
                      for fact in facts)
        code = compile(source, f"<trace@{pc:#06x}>", "exec")
        self._bind_facts(ns, facts)
        exec(code, ns)
        head = nodes[0]
        entry = (ns["_blk"], head.count + 1, head.cost)
        self.stats.compiled += 1
        if self.specializer is not None and sites:
            # Each chained site is a specialization this trace replaces.
            self.specializer.stats.compiled += len(sites)
        tables = {name: value for name, value in ns.items()
                  if name[0] in "tu" and name[1:].isdigit()}
        if mem_base is not None:
            self.cpu._block_cache.store(
                ("trace",) + mem_base, pc,
                _CachedBlock(code=code, tables=tables,
                             icount=head.count + 1, cost=head.cost,
                             term_addr=None, trap=sites, spec_key=key))
        if self.store is not None:
            artifact = {"source": source, "icount": head.count + 1,
                        "cost": head.cost,
                        "sites": [list(site) for site in sites],
                        "tables": manifest}
            self.store.put(self._store_base(), pc, repr(key), artifact)
        return entry

    def _assemble(self, head: int, ns: dict, manifest):
        """Walk the chain of blocks starting at *head*.

        Returns ``(nodes, tail)`` or None to decline.  ``tail`` is
        ``("backedge",)`` when the walk closed a loop back to *head*,
        ``("exit", addr)`` when it stopped at an unchainable block, the
        block cap, or an inner join, and ``("end",)`` when the last
        node's arms all resolve internally.  Single blocks are declined:
        plain fusion (with its self-loop and backward-branch-trap full
        bodies) already handles them.
        """
        nodes: List[_Node] = []
        starts: Dict[int, int] = {}
        task = None
        uid = [0]
        cur = head
        while True:
            if cur in starts:
                tail = ("backedge",) if cur == head else ("exit", cur)
                break
            if len(nodes) >= self.max_blocks:
                tail = ("exit", cur)
                break
            node = self._build_node(cur, ns, manifest, uid)
            if node is None:
                tail = ("exit", cur)
                break
            if node.facts is not None:
                if task is None:
                    task = node.facts.task
                elif node.facts.task is not task:
                    tail = ("exit", cur)  # one guard covers one task
                    break
            starts[cur] = len(nodes)
            nodes.append(node)
            if node.cont is None:
                tail = ("end",)
                break
            cur = node.cont
        if len(nodes) < 2:
            return None
        return nodes, tail

    def _build_node(self, start: int, ns: dict, manifest, uid):
        """Fuse members from *start* and classify the terminator, or
        None when the block cannot be chained (terminator with dynamic
        or out-of-model control flow, trap the specializer declines,
        decode error, member cap, trap-region boundary)."""
        cpu = self.cpu
        members: List[_Member] = []
        cur = start
        ins = None
        while len(members) < cpu._max_block:
            if cpu.in_trap_region(cur):
                return None
            try:
                ins = cpu._decode_instruction(cur)
            except (InvalidInstruction, MemoryFault):
                return None
            parts = cpu._member_parts(ins, ns, uid[0])
            if parts is None:
                break
            effect, flags, cycles, touches, preds = parts
            reads, writes = sreg_effects(ins.mnemonic, ins.operands)
            self._note_tables(ins, uid[0], manifest)
            uid[0] += 1
            members.append(_Member(effect, flags, cycles, touches,
                                   preds, reads, writes))
            cur = ins.next_address
        else:
            return None  # member cap reached without a terminator
        return self._classify(ins, start, members)

    @staticmethod
    def _note_tables(ins, uid: int, manifest) -> None:
        m = ins.mnemonic
        entries = _TABLE_MNEMONICS.get(m)
        if entries is not None:
            for prefix, kind, cin in entries:
                manifest.append([f"{prefix}{uid}", kind, cin])
        elif m in ("SUBI", "CPI"):
            manifest.append([f"t{uid}", "subrow", ins.operands[1], 0])
        elif m == "SBCI":
            manifest.append([f"t{uid}", "subrow", ins.operands[1], 0])
            manifest.append([f"u{uid}", "subrow", ins.operands[1], 1])

    def _classify(self, ins, start: int, members):
        cpu = self.cpu
        m = ins.mnemonic
        node = _Node(start, members)
        if m in ("JMP", "CALL") and cpu.in_trap_region(ins.operands[0]):
            if self.specializer is None:
                return None
            facts = self.specializer.trace_facts(
                cpu, ins.address, ins.operands[0], m == "CALL")
            if facts is None:
                return None
            return self._classify_trap(node, facts)
        if m in ("BRBS", "BRBC"):
            s, k = ins.operands
            node.kind = "brcond"
            node.bit = s
            node.branch_if_set = m == "BRBS"
            node.taken = ins.next_address + k
            node.fall = ins.next_address
            node.cont = node.fall
            return node
        if m == "RJMP":
            target = ins.next_address + ins.operands[0]
            if cpu.in_trap_region(target):
                return None
            node.kind = "jmp"
            node.target = target
            node.jcycles = 2
            node.cont = target
            return node
        if m == "JMP":
            node.kind = "jmp"
            node.target = ins.operands[0]
            node.jcycles = 3
            node.cont = node.target
            return node
        # RET/RETI, indirect transfers, skips, I/O, SLEEP, BREAK,
        # undecodable: the trace ends before this block.
        return None

    def _classify_trap(self, node: _Node, facts):
        node.kind = "trap"
        node.facts = facts
        name = facts.kind.name
        resume = facts.site + 2
        if name == "BRANCH_BACKWARD":
            bit, _branch_if_set, nat_target = facts.params
            node.bit = bit
            node.branch_if_set = facts.params[1]
            node.nat_target = nat_target
            if nat_target == node.start:
                node.strip = True
                node.cont = None if bit is None else resume
            elif bit is None:
                node.cont = None  # backedge or exit, resolved internally
            else:
                node.cont = resume
            return node
        if name == "MEM_DIRECT":
            _mn, _reg, logical = facts.params
            config = facts.config
            region = facts.region
            if logical < config.ram_start:
                return None  # I/O class: hooks may raise events/IRQs
            if logical >= config.memory_size:
                return None  # always a fault: stay generic
            if logical >= config.ram_start + region.heap_size:
                physical = logical + (region.p_u - config.memory_size)
                if not region.p_h <= physical < region.p_u:
                    return None  # faults at this geometry
            node.cont = resume
            return node
        if name in ("MEM_INDIRECT", "STACK_PUSH", "STACK_POP"):
            node.cont = resume
            return node
        if name == "CALL_DIRECT":
            node.cont = facts.params[0]
            return node
        return None


class _Emitter:
    """Generates the closure source for one assembled trace."""

    def __init__(self, nodes: List[_Node], tail: Tuple):
        self.nodes = nodes
        self.tail = tail
        self.head_addr = nodes[0].start
        trap_facts = [n.facts for n in nodes if n.facts is not None]
        self.has_trap = bool(trap_facts)
        self.has_branch_trap = any(
            f.kind.name == "BRANCH_BACKWARD" for f in trap_facts)
        self.period = (trap_facts[0].config.branch_trap_period
                       if self.has_branch_trap else 0)
        self.kind_order: List[str] = []
        for node in nodes:
            if node.facts is not None:
                name = node.facts.kind.name
                if name not in self.kind_order:
                    self.kind_order.append(name)
                node.kind_index = self.kind_order.index(name)
        self._decide(nodes)
        self.uses_sr = self._uses_sr(nodes)

    # -- liveness decisions -------------------------------------------------------

    @staticmethod
    def _decide(nodes) -> None:
        """Per-node flag-deferral and strip-elision decisions, then the
        intra-node dead-flag elision pass."""
        for node in nodes:
            members = node.members
            last = members[-1] if members else None
            conditional = (node.kind == "brcond"
                           or (node.kind == "trap" and node.facts
                               .kind.name == "BRANCH_BACKWARD"))
            if node.strip and last is not None and last.flags \
                    and all(m.reads == 0 for m in members):
                if node.bit is None:
                    node.strip_elide = all(not m.flags
                                           for m in members[:-1])
                else:
                    node.strip_elide = (1 << node.bit) in last.preds
            elif conditional and node.bit is not None \
                    and last is not None and last.flags \
                    and (1 << node.bit) in last.preds and not node.strip:
                node.deferred = True
            # Intra-node elision: a member's flag lines are dead when a
            # later member in the same node rewrites every bit before
            # anything (including the node's own test and every exit,
            # conservatively live-out = all flags) can read them.  The
            # deferred / strip-elided last member stays un-elided — its
            # lines move to the exit materializations — but its writes
            # still kill.
            excluded = last if (node.deferred or node.strip_elide) \
                else None
            live = 0xFF
            for member in reversed(members):
                member.elided = False
                if member is not excluded and member.flags \
                        and not (member.writes & live):
                    member.elided = True
                    live |= member.reads
                else:
                    live = (live & ~member.writes) | member.reads

    def _uses_sr(self, nodes) -> bool:
        for node in nodes:
            if any(m.touches for m in node.members):
                return True
            if node.kind == "brcond" and not node.deferred:
                return True
            if node.kind == "trap" and node.bit is not None \
                    and not node.deferred and not node.strip_elide \
                    and node.facts.kind.name == "BRANCH_BACKWARD":
                return True
        return False

    @staticmethod
    def _safe_entry(node: _Node) -> int:
        """Flag bits *node* is guaranteed to rewrite before anything can
        observe them — a predecessor's deferred materialization of those
        bits may be skipped on the continue edge into *node*.

        A bit counts as killed once an inline member writes it, or once
        the node's own deferred/strip-elided last member writes it (its
        materialization runs on every exit, and continue edges apply
        this same rule to the next node — sound by induction).  A bit is
        observed by a member's architectural read or by a non-deferred
        sr-based branch test.
        """
        read = 0
        killed = 0
        last = node.members[-1] if node.members else None
        excluded_kills = node.deferred or node.strip_elide
        for member in node.members:
            read |= member.reads & ~killed
            if not member.elided or (excluded_kills and member is last):
                killed |= member.writes
        tests_sr = ((node.kind == "brcond" and not node.deferred)
                    or (node.kind == "trap" and node.bit is not None
                        and node.facts.kind.name == "BRANCH_BACKWARD"
                        and not node.deferred and not node.strip_elide))
        if tests_sr:
            read |= (1 << node.bit) & ~killed
        return killed & ~read

    # -- shared emission helpers --------------------------------------------------

    def _member_lines(self, node: _Node) -> List[str]:
        lines: List[str] = []
        last = node.members[-1] if node.members else None
        skip_last = node.deferred or node.strip_elide
        for member in node.members:
            lines += member.effect
            if member.elided:
                continue
            if skip_last and member is last:
                continue
            lines += member.flags
        return lines

    def _pending(self, node: _Node):
        """(materialization lines, written mask) for a deferring node."""
        if not node.deferred:
            return None
        last = node.members[-1]
        return (last.flags, last.writes)

    def _flush(self, pc: Optional[int], tb: str, mats=(),
               slow: Optional[str] = None) -> List[str]:
        """Exit sequence: materialize deferred flags, write the shadowed
        state back, settle the trap counters, set the resume pc, then
        (order matters) run the branch-counter/scheduler logic and any
        slow-path dispatch — both may preempt and must observe exactly
        the state a stand-alone specialized block would have left."""
        lines = list(mats)
        if self.uses_sr:
            lines.append("cpu.sreg = sr")
        lines += ["cpu.cycles = cy", "cpu.instret = n"]
        for i in range(len(self.kind_order)):
            lines.append(f"if c{i}: k_counts[kk{i}] = "
                         f"k_counts.get(kk{i}, 0) + c{i}")
        if self.has_trap:
            lines += ["k_stats.kernel_cycles += kc",
                      "k_task.kernel_cycles += kc"]
        if pc is not None:
            lines.append(f"cpu.pc = {pc}")
        if self.has_branch_trap:
            if tb == "plain":
                lines.append("k_task.branch_counter = tb")
            elif tb == "reset":
                lines += [f"k_task.branch_counter = {self.period}",
                          "k_sched()"]
            else:  # "check"
                lines += ["if tb <= 0:",
                          f"    k_task.branch_counter = {self.period}",
                          "    k_sched()",
                          "else:",
                          "    k_task.branch_counter = tb"]
        if slow is not None:
            lines += [slow, "cpu.instret += 1"]
        lines.append("return")
        return lines

    def _seam(self, target: _Node, pending) -> List[str]:
        """Dispatch-boundary check before re-entering *target* inside
        the trace: replicates ``_run_fused``'s event/limit gate, exiting
        (with all state flushed) when the next block may not start."""
        mats = pending[0] if pending else ()
        lines = [f"if cy >= da or n + {target.count + 1} > mi "
                 f"or cy + {target.cost} >= mc:"]
        lines += _ind(self._flush(target.start, "plain", mats=mats))
        if pending and pending[1] & ~self._safe_entry(target):
            lines += pending[0]
        return lines

    def _backedge(self, pending) -> List[str]:
        return self._seam(self.nodes[0], pending) + ["continue"]

    # -- per-node bodies ----------------------------------------------------------

    def _node_body(self, node: _Node):
        if node.kind == "brcond":
            return self._brcond_body(node)
        if node.kind == "jmp":
            return self._jmp_body(node)
        name = node.facts.kind.name
        if name == "BRANCH_BACKWARD":
            if node.strip:
                return self._strip_body(node), None
            return self._branch_trap_body(node)
        if name == "MEM_INDIRECT":
            return self._mem_indirect_body(node), None
        if name == "MEM_DIRECT":
            return self._mem_direct_body(node), None
        if name == "STACK_PUSH":
            return self._stack_push_body(node), None
        if name == "STACK_POP":
            return self._stack_pop_body(node), None
        return self._call_direct_body(node), None

    def _brcond_body(self, node: _Node):
        lines = self._member_lines(node)
        pending = self._pending(node)
        if node.deferred:
            pred = node.members[-1].preds[1 << node.bit]
            test = pred if node.branch_if_set else f"not ({pred})"
        else:
            mask = 1 << node.bit
            test = f"sr & {mask}" if node.branch_if_set \
                else f"not (sr & {mask})"
        mats = pending[0] if pending else ()
        lines.append(f"n += {node.count + 1}")
        taken = [f"cy += {node.cost + 2}"]
        if node.taken == self.head_addr:
            taken += self._backedge(pending)
        else:
            taken += self._flush(node.taken, "plain", mats=mats)
        lines.append(f"if {test}:")
        lines += _ind(taken)
        lines.append(f"cy += {node.cost + 1}")
        return lines, pending

    def _jmp_body(self, node: _Node):
        lines = self._member_lines(node)
        lines += [f"cy += {node.cost + node.jcycles}",
                  f"n += {node.count + 1}"]
        return lines, None

    def _trap_prologue(self, node: _Node) -> List[str]:
        """Members plus their accounting, matching the fused-block order
        exactly: member cycles land before the trap code runs."""
        lines = self._member_lines(node)
        if node.cost:
            lines.append(f"cy += {node.cost}")
        if node.count:
            lines.append(f"n += {node.count}")
        return lines

    @staticmethod
    def _slow_call(facts) -> str:
        return f"k_slow(cpu, {facts.site}, {facts.target}, " \
               f"{facts.is_call})"

    def _mem_indirect_body(self, node: _Node) -> List[str]:
        from ..kernel import costs
        facts = node.facts
        mnemonic, reg, mode, grouped = facts.params
        region = facts.region
        config = facts.config
        rs = config.ram_start
        mem_size = config.memory_size
        heap_high = rs + region.heap_size
        heap_disp = region.p_l - rs
        stack_disp = region.p_u - mem_size
        ptr_base = {"X": 26, "Y": 28, "Z": 30}
        if mnemonic in ("LD", "ST"):
            base = ptr_base[mode.strip("+-")]
            addr = [f"ta = r[{base}] | (r[{base + 1}] << 8)"]
            if mode.startswith("-"):
                addr.append("ta = (ta - 1) & 0xFFFF")
            if mode.endswith("+"):
                post = ["tu = (ta + 1) & 0xFFFF",
                        f"r[{base}] = tu & 0xFF",
                        f"r[{base + 1}] = tu >> 8"]
            elif mode.startswith("-"):
                post = [f"r[{base}] = ta & 0xFF",
                        f"r[{base + 1}] = ta >> 8"]
            else:
                post = []
            store = mnemonic == "ST"
        else:  # LDD / STD
            ptr, displacement = mode
            base = ptr_base[ptr]
            addr = [f"ta = ((r[{base}] | (r[{base + 1}] << 8))"
                    f" + {displacement}) & 0xFFFF"]
            post = []
            store = mnemonic == "STD"
        overhead_heap = costs.MEM_GROUPED_FOLLOWER if grouped \
            else costs.MEM_INDIRECT_HEAP
        overhead_stack = costs.MEM_GROUPED_FOLLOWER if grouped \
            else costs.MEM_INDIRECT_STACK_FRAME
        charge_heap = 2 + overhead_heap
        charge_stack = 2 + overhead_stack
        counter = f"c{node.kind_index}"
        eff_heap = f"mem[ta + {heap_disp}] = r[{reg}]" if store \
            else f"r[{reg}] = mem[ta + {heap_disp}]"
        eff_stack = f"mem[tp] = r[{reg}]" if store \
            else f"r[{reg}] = mem[tp]"
        arm_heap = [f"{counter} += 1", eff_heap,
                    f"cy += {charge_heap}", f"kc += {charge_heap}"] \
            + post + ["n += 1"]
        arm_stack = [f"{counter} += 1", eff_stack,
                     f"cy += {charge_stack}", f"kc += {charge_stack}"] \
            + post + ["n += 1"]
        lines = self._trap_prologue(node)
        lines += addr
        if facts.elide == "heap":
            # Certificate-validated: ta never leaves the logical heap,
            # so the guard chain is dead — run the arm unguarded with
            # identical effects, counters and charges.
            return lines + arm_heap
        if facts.elide == "stack":
            # Certificate-validated: ta is always a live stack address.
            return lines + [f"tp = ta + ({stack_disp})"] + arm_stack
        slow = self._slow_call(facts)
        lines.append(f"if {rs} <= ta < {heap_high}:")
        lines += _ind(arm_heap)
        lines.append(f"elif {heap_high} <= ta < {mem_size}:")
        lines.append(f"    tp = ta + ({stack_disp})")
        lines.append(f"    if tp >= {region.p_h}:")
        lines += _ind(arm_stack, 2)
        lines.append("    else:")
        lines += _ind(self._flush(None, "plain", slow=slow), 2)
        lines.append("else:")
        lines += _ind(self._flush(None, "plain", slow=slow))
        return lines

    def _mem_direct_body(self, node: _Node) -> List[str]:
        from ..kernel import costs
        facts = node.facts
        mnemonic, reg, logical = facts.params
        region = facts.region
        config = facts.config
        rs = config.ram_start
        if logical < rs + region.heap_size:
            physical = region.p_l + (logical - rs)
        else:
            physical = logical + (region.p_u - config.memory_size)
        store = mnemonic == "STS"
        effect = f"mem[{physical}] = r[{reg}]" if store \
            else f"r[{reg}] = mem[{physical}]"
        charge = 2 + costs.MEM_DIRECT_OTHER
        lines = self._trap_prologue(node)
        lines += [f"c{node.kind_index} += 1", effect,
                  f"cy += {charge}", f"kc += {charge}", "n += 1"]
        return lines

    def _stack_push_body(self, node: _Node) -> List[str]:
        from ..kernel import costs
        facts = node.facts
        (reg,) = facts.params
        region = facts.region
        floor = region.p_h + facts.config.stack_margin
        charge = 2 + costs.STACK_OP
        fast = [f"c{node.kind_index} += 1",
                "if tsp < k_task.min_sp_seen: k_task.min_sp_seen = tsp",
                f"td = {region.p_u} - tsp",
                "if td > k_task.max_stack_used: "
                "k_task.max_stack_used = td",
                f"mem[tsp] = r[{reg}]",
                "cpu.sp = tsp - 1",
                f"cy += {charge}", f"kc += {charge}", "n += 1"]
        lines = self._trap_prologue(node)
        lines += ["tsp = cpu.sp", f"if tsp >= {floor}:"]
        lines += _ind(fast)
        lines.append("else:")
        lines += _ind(self._flush(None, "plain",
                                  slow=self._slow_call(facts)))
        return lines

    def _stack_pop_body(self, node: _Node) -> List[str]:
        from ..kernel import costs
        facts = node.facts
        (reg,) = facts.params
        region = facts.region
        charge = 2 + costs.STACK_OP
        fast = [f"c{node.kind_index} += 1",
                "cpu.sp = tsp",
                f"r[{reg}] = mem[tsp]",
                f"cy += {charge}", f"kc += {charge}", "n += 1"]
        lines = self._trap_prologue(node)
        lines.append("tsp = cpu.sp + 1")
        if facts.elide == "pop":
            # Certificate-validated: depth >= 1, the POP cannot
            # underflow at any region placement.
            return lines + fast
        lines.append(f"if tsp < {region.p_u}:")
        lines += _ind(fast)
        lines.append("else:")
        lines += _ind(self._flush(None, "plain",
                                  slow=self._slow_call(facts)))
        return lines

    def _call_direct_body(self, node: _Node) -> List[str]:
        from ..kernel import costs
        facts = node.facts
        (nat_target,) = facts.params
        region = facts.region
        resume = facts.site + 2
        floor = region.p_h + facts.config.stack_margin
        charge = 4 + costs.CALL_TRAMPOLINE
        fast = [f"c{node.kind_index} += 1",
                "if tsp < k_task.min_sp_seen: k_task.min_sp_seen = tsp",
                f"td = {region.p_u + 1} - tsp",
                "if td > k_task.max_stack_used: "
                "k_task.max_stack_used = td",
                f"mem[tsp] = {resume & 0xFF}",
                f"mem[tsp - 1] = {(resume >> 8) & 0xFF}",
                "cpu.sp = tsp - 2",
                f"cy += {charge}", f"kc += {charge}", "n += 1"]
        lines = self._trap_prologue(node)
        lines += ["tsp = cpu.sp", f"if tsp - 1 >= {floor}:"]
        lines += _ind(fast)
        lines.append("else:")
        lines += _ind(self._flush(None, "plain",
                                  slow=self._slow_call(facts)))
        return lines

    def _branch_trap_body(self, node: _Node):
        from ..kernel import costs
        facts = node.facts
        inline = costs.BRANCH_COUNTER_INLINE
        resume = facts.site + 2
        counter = f"c{node.kind_index}"
        lines = self._member_lines(node)
        lines += [f"n += {node.count + 1}", f"{counter} += 1",
                  "tb -= 1"]
        if node.bit is None:
            lines += [f"cy += {node.cost + 2 + inline}",
                      f"kc += {2 + inline}"]
            if node.nat_target == self.head_addr:
                lines.append("if tb <= 0:")
                lines += _ind(self._flush(node.nat_target, "reset"))
                lines += self._backedge(None)
            else:
                lines += self._flush(node.nat_target, "check")
            return lines, None
        pending = self._pending(node)
        if node.deferred:
            pred = node.members[-1].preds[1 << node.bit]
            test = pred if node.branch_if_set else f"not ({pred})"
        else:
            mask = 1 << node.bit
            test = f"sr & {mask}" if node.branch_if_set \
                else f"not (sr & {mask})"
        mats = pending[0] if pending else ()
        taken = [f"cy += {node.cost + 2 + inline}",
                 f"kc += {2 + inline}"]
        if node.nat_target == self.head_addr:
            taken.append("if tb <= 0:")
            taken += _ind(self._flush(node.nat_target, "reset",
                                      mats=mats))
            taken += self._backedge(pending)
        else:
            taken += self._flush(node.nat_target, "check", mats=mats)
        lines.append(f"if {test}:")
        lines += _ind(taken)
        lines += [f"cy += {node.cost + 1 + inline}",
                  f"kc += {1 + inline}",
                  "if tb <= 0:"]
        lines += _ind(self._flush(resume, "reset", mats=mats))
        return lines, pending

    def _strip_body(self, node: _Node) -> List[str]:
        """Strip-mined self-looping backward-branch trap.

        ``im`` is the largest iteration count that provably cannot cross
        any observable boundary — the branch counter, the next due
        event, and both run limits — so the strip body runs with *no*
        per-iteration checks; the post-strip check then trips on exactly
        the iteration stepwise execution would have stopped at.  A
        pending ``until()`` (``da == -1.0``) degenerates to one
        iteration per dispatch, matching the specializer's full-body
        loop.
        """
        from ..kernel import costs
        facts = node.facts
        inline = costs.BRANCH_COUNTER_INLINE
        resume = facts.site + 2
        counter = f"c{node.kind_index}"
        iter_count = node.count + 1
        taken_cycles = node.cost + 2 + inline
        taken_kernel = 2 + inline
        inloop = self._member_lines(node)
        mats = list(node.members[-1].flags) if node.strip_elide else []
        bounds = (f"im = min(tb, (mi - n) // {iter_count} - 1, "
                  f"(mc - {node.cost} - cy) // {taken_cycles}, "
                  f"(da - cy) // {taken_cycles}, {_MAX_STRIP})")
        account = [f"cy += im * {taken_cycles}",
                   f"n += im * {iter_count}",
                   "tb -= im",
                   f"kc += im * {taken_kernel}",
                   f"{counter} += im"]
        exit_check = (f"if tb <= 0 or cy >= da or n + {iter_count} > mi "
                      f"or cy + {node.cost} >= mc:")
        exit_flush = _ind(self._flush(node.start, "check", mats=mats))
        lines = ["while True:"]
        inner = [bounds, "im = 1 if im < 1 else int(im)"]
        if node.bit is None:
            if inloop:
                inner.append("for j in range(im):")
                inner += _ind(inloop)
            inner += account
            inner.append(exit_check)
            inner += exit_flush
            lines += _ind(inner)
            return lines  # only exits via the flush: trace ends here
        if node.strip_elide:
            pred = node.members[-1].preds[1 << node.bit]
            fall_test = f"not ({pred})" if node.branch_if_set else pred
        else:
            mask = 1 << node.bit
            fall_test = f"not (sr & {mask})" if node.branch_if_set \
                else f"sr & {mask}"
        inner.append("for j in range(1, im + 1):")
        inner += _ind(inloop + [f"if {fall_test}:", "    break"])
        inner.append("else:")
        inner += _ind(account + [exit_check] + exit_flush
                      + ["continue"])
        inner += [f"cy += j * {taken_cycles} - 1",
                  f"n += j * {iter_count}",
                  "tb -= j",
                  f"kc += j * {taken_kernel} - 1",
                  f"{counter} += j",
                  "break"]
        lines += _ind(inner)
        lines += mats
        lines.append("if tb <= 0:")
        lines += _ind(self._flush(resume, "reset"))
        return lines

    # -- guard / deopt ------------------------------------------------------------

    def _guard_lines(self) -> List[str]:
        facts = [n.facts for n in self.nodes if n.facts is not None]
        guard = (f"if k_task is not k_kernel.current "
                 f"or k_task.region_epoch != {facts[0].epoch}:")
        return [guard] + _ind(self._deopt_lines())

    def _deopt_lines(self) -> List[str]:
        """Guard-failure arm: retire this trace's cache slot and execute
        the head block generically (full flags, generic trap dispatch),
        mirroring what a deoptimized fused block would do."""
        head = self.nodes[0]
        lines = ["k_spec.deopts += 1", f"k_bl[{head.start}] = None"]
        touches = any(m.touches for m in head.members)
        if touches:
            lines.append("sr = cpu.sreg")
        for member in head.members:
            lines += member.effect
            lines += member.flags
        if touches:
            lines.append("cpu.sreg = sr")
        if head.kind == "trap":
            if head.cost:
                lines.append(f"cpu.cycles += {head.cost}")
            if head.count:
                lines.append(f"cpu.instret += {head.count}")
            lines += [self._slow_call(head.facts), "cpu.instret += 1"]
        elif head.kind == "brcond":
            flags = "sr" if touches else "cpu.sreg"
            mask = 1 << head.bit
            test = f"{flags} & {mask}" if head.branch_if_set \
                else f"not ({flags} & {mask})"
            lines += [f"if {test}:",
                      f"    cpu.pc = {head.taken}",
                      f"    cpu.cycles += {head.cost + 2}",
                      "else:",
                      f"    cpu.pc = {head.fall}",
                      f"    cpu.cycles += {head.cost + 1}",
                      f"cpu.instret += {head.count + 1}"]
        else:  # jmp
            lines += [f"cpu.pc = {head.target}",
                      f"cpu.cycles += {head.cost + head.jcycles}",
                      f"cpu.instret += {head.count + 1}"]
        lines.append("return")
        return lines

    # -- whole-closure assembly ---------------------------------------------------

    def source(self) -> str:
        body: List[str] = []
        if self.has_trap:
            body += self._guard_lines()
        if self.uses_sr:
            body.append("sr = cpu.sreg")
        body += ["cy = cpu.cycles",
                 "n = cpu.instret",
                 # No event can be scheduled mid-trace, so next_due is
                 # trace-invariant; -1.0 forces an exit at the first
                 # seam when until() must be evaluated per dispatch.
                 "da = -1.0 if cpu._run_until is not None "
                 "else cpu.events.next_due",
                 "mi = cpu._run_mi",
                 "mc = cpu._run_mc"]
        if self.has_branch_trap:
            body.append("tb = k_task.branch_counter")
        if self.has_trap:
            body.append("kc = 0")
        for i in range(len(self.kind_order)):
            body.append(f"c{i} = 0")
        body.append("while True:")
        inner: List[str] = []
        pending = None
        for i, node in enumerate(self.nodes):
            if i > 0:
                inner += self._seam(node, pending)
            node_lines, pending = self._node_body(node)
            inner += node_lines
        if self.tail == ("backedge",):
            inner += self._backedge(pending)
        elif self.tail[0] == "exit":
            mats = pending[0] if pending else ()
            inner += self._flush(self.tail[1], "plain", mats=mats)
        # ("end",): the last node resolved every arm internally.
        body += _ind(inner)
        return "def _blk():\n" + "\n".join(_ind(body))
