"""Program (flash) and data (SRAM) memory for the simulated mote."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import MemoryFault
from . import ioports
from .encoding import instruction_words


class Flash:
    """128 KB program memory, addressed in 16-bit words.

    Flash contents are immutable during execution (paper assumption
    III-A: application code does not modify itself), which lets the CPU
    pre-decode words into executable closures.
    """

    def __init__(self, words: Optional[Sequence[int]] = None,
                 size_words: int = ioports.FLASH_WORDS):
        self.size_words = size_words
        self._words: List[int] = [0xFFFF] * size_words
        self._burn_listeners: List = []
        self._fingerprint: Optional[str] = None
        if words is not None:
            self.load(0, words)

    def add_burn_listener(self, listener) -> None:
        """Call *listener()* after every :meth:`load` (re-burn).

        Attached CPUs use this to drop decoded thunks and fused
        superblocks whose flash words just changed.
        """
        self._burn_listeners.append(listener)

    def load(self, word_address: int, words: Iterable[int]) -> None:
        """Burn *words* into flash starting at *word_address*."""
        for offset, word in enumerate(words):
            self._words[word_address + offset] = word & 0xFFFF
        self._fingerprint = None
        for listener in self._burn_listeners:
            listener()

    def fingerprint(self) -> str:
        """Content hash of the full image, computed lazily per burn.

        Keys the process-wide superblock translation cache: nodes whose
        flash hashes equal share compiled superblocks (N identical nodes
        in a network compile each hot block once).
        """
        if self._fingerprint is None:
            import array

            from ..fingerprint import blake2b_hex
            payload = array.array("H", self._words).tobytes()
            self._fingerprint = blake2b_hex(payload)
        return self._fingerprint

    def word(self, word_address: int) -> int:
        if not 0 <= word_address < self.size_words:
            raise MemoryFault(word_address, "program fetch")
        return self._words[word_address]

    def byte(self, byte_address: int) -> int:
        """Byte-wise read, as performed by ``LPM`` (little-endian words)."""
        word = self.word(byte_address >> 1)
        return (word >> 8) & 0xFF if byte_address & 1 else word & 0xFF

    def instruction_size(self, word_address: int) -> int:
        """Words (1 or 2) occupied by the instruction at *word_address*."""
        return instruction_words(self.word(word_address))

    def as_words(self, start: int = 0,
                 count: Optional[int] = None) -> List[int]:
        end = self.size_words if count is None else start + count
        return self._words[start:end]


class DataMemory:
    """The 4 KB SRAM plus register/I-O mapping of the data address space.

    Layout (ATmega128L):

    * ``0x000-0x01F``  register file (handled by the CPU, not stored here)
    * ``0x020-0x0FF``  I/O and extended I/O registers
    * ``0x100-0x10FF`` internal SRAM

    Device registers install read/write hooks; un-hooked I/O addresses
    behave as plain bytes so programs can use them as scratch space, as
    real firmware sometimes does.
    """

    def __init__(self, size: int = ioports.DATA_SIZE):
        self.size = size
        self.data = bytearray(size)
        self._read_hooks = {}
        self._write_hooks = {}

    def install_read_hook(self, address: int, hook) -> None:
        """``hook() -> int`` services reads of *address*."""
        self._read_hooks[address] = hook

    def install_write_hook(self, address: int, hook) -> None:
        """``hook(value: int) -> None`` services writes to *address*."""
        self._write_hooks[address] = hook

    def remove_hooks(self, address: int) -> None:
        self._read_hooks.pop(address, None)
        self._write_hooks.pop(address, None)

    def read(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise MemoryFault(address, "read")
        if address < ioports.RAM_START:
            hook = self._read_hooks.get(address)
            if hook is not None:
                return hook() & 0xFF
        return self.data[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.size:
            raise MemoryFault(address, "write")
        if address < ioports.RAM_START:
            hook = self._write_hooks.get(address)
            if hook is not None:
                hook(value & 0xFF)
                return
        self.data[address] = value & 0xFF

    # -- bulk helpers used by the kernel's stack relocation ------------------

    def read_block(self, address: int, length: int) -> bytes:
        if address < 0 or address + length > self.size:
            raise MemoryFault(address, f"block read of {length}")
        return bytes(self.data[address:address + length])

    def write_block(self, address: int, payload: bytes) -> None:
        if address < 0 or address + len(payload) > self.size:
            raise MemoryFault(address, f"block write of {len(payload)}")
        self.data[address:address + len(payload)] = payload

    def move_block(self, src: int, dst: int, length: int) -> None:
        """Overlap-safe byte move, the primitive behind stack relocation."""
        block = self.read_block(src, length)
        self.write_block(dst, block)
