"""Two-pass assembler for the AVR subset.

This is the "compiler" front end of the reproduction's toolchain: mote
programs are written in AVR assembly, and assembling one produces both
the binary image and the memory-usage information (the *symbol list*)
that SenSmart's base-station rewriter consumes (paper Figure 1).

Syntax
------
::

    ; line comment
    .equ  TICKS = 0x40 * 2      ; constant definition
    .org  0x0010                ; set flash word address
    .bss  buffer, 32            ; reserve 32 bytes of SRAM (heap area)
    .dw   0x1234, label         ; literal flash words
    .db   1, 2, 3               ; literal flash bytes (word padded)

    main:                        ; label = flash word address
        ldi   r16, lo8(buffer)   ; expressions, lo8/hi8 operators
        ldi   r17, hi8(buffer)
        ld    r0, X+             ; pointer modes X X+ -X Y+ -Y Z+ -Z
        ldd   r4, Y+3            ; displacement addressing
        std   Z+5, r2
        breq  main               ; branch targets are labels/expressions

``.bss`` reservations start at SRAM base (0x100) and grow upward; their
total defines the program's heap size in the symbol list.  Plain ``Y``/
``Z`` loads/stores canonicalize to ``LDD``/``STD`` with displacement 0
and ``TST/CLR/LSL/ROL``, branch aliases (``BREQ`` ...) and SREG aliases
(``SEI`` ...) canonicalize exactly like avr-as.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import AssemblerError
from . import ioports
from .encoding import encode
from .instruction import DataWord, Instruction
from .isa import (BRANCH_ALIASES, OPCODES, PTR_MODES, SREG_ALIASES,
                  SYNTH_R2, Format)

_TOKEN_RE = re.compile(
    r"\s*(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+|[A-Za-z_.$][\w.$]*"
    r"|<<|>>|[()+\-*/%&|^~])")

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_REG_RE = re.compile(r"^[rR](\d{1,2})$")


class _Expr:
    """Tiny recursive-descent expression evaluator."""

    def __init__(self, text: str, symbols: Dict[str, int]):
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.symbols = symbols

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens, pos = [], 0
        while pos < len(text):
            if text[pos].isspace():
                pos += 1
                continue
            match = _TOKEN_RE.match(text, pos)
            if not match:
                raise AssemblerError(f"bad expression near {text[pos:]!r}")
            tokens.append(match.group(1))
            pos = match.end()
        return tokens

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise AssemblerError("unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> int:
        value = self._or()
        if self._peek() is not None:
            raise AssemblerError(f"trailing tokens in expression: "
                                 f"{self.tokens[self.pos:]}")
        return value

    def _or(self) -> int:
        value = self._xor()
        while self._peek() == "|":
            self._next()
            value |= self._xor()
        return value

    def _xor(self) -> int:
        value = self._and()
        while self._peek() == "^":
            self._next()
            value ^= self._and()
        return value

    def _and(self) -> int:
        value = self._shift()
        while self._peek() == "&":
            self._next()
            value &= self._shift()
        return value

    def _shift(self) -> int:
        value = self._sum()
        while self._peek() in ("<<", ">>"):
            op = self._next()
            rhs = self._sum()
            value = value << rhs if op == "<<" else value >> rhs
        return value

    def _sum(self) -> int:
        value = self._term()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _term(self) -> int:
        value = self._atom()
        while self._peek() in ("*", "/", "%"):
            op = self._next()
            rhs = self._atom()
            if op == "*":
                value *= rhs
            elif op == "/":
                value //= rhs
            else:
                value %= rhs
        return value

    def _atom(self) -> int:
        token = self._next()
        if token == "-":
            return -self._atom()
        if token == "~":
            return ~self._atom()
        if token == "(":
            value = self._or()
            if self._next() != ")":
                raise AssemblerError("missing ')' in expression")
            return value
        if token in ("lo8", "hi8"):
            if self._next() != "(":
                raise AssemblerError(f"{token} requires parentheses")
            value = self._or()
            if self._next() != ")":
                raise AssemblerError("missing ')' in expression")
            return value & 0xFF if token == "lo8" else (value >> 8) & 0xFF
        if token[0].isdigit():
            try:
                return int(token, 0)
            except ValueError:
                raise AssemblerError(f"bad number {token!r}") from None
        if token in self.symbols:
            return self.symbols[token]
        raise AssemblerError(f"undefined symbol {token!r}")


@dataclass
class AsmProgram:
    """Output of :func:`assemble`: binary plus symbol information."""

    name: str
    words: List[int]
    origin: int
    items: List[Union[Instruction, DataWord]]
    labels: Dict[str, int]
    bss_symbols: Dict[str, int]
    heap_size: int
    entry: int

    @property
    def size_words(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return 2 * len(self.words)

    @property
    def instructions(self) -> List[Instruction]:
        return [item for item in self.items if isinstance(item, Instruction)]


@dataclass
class _Statement:
    kind: str  # "op", "dw", "db"
    mnemonic: str = ""
    operand_text: str = ""
    values: Tuple = ()
    address: int = 0
    words: int = 1
    line: int = 0
    source: str = ""


class Assembler:
    """Two-pass assembler producing an :class:`AsmProgram`."""

    def __init__(self, ram_start: int = ioports.RAM_START):
        self.ram_start = ram_start

    def assemble(self, source: str, name: str = "program",
                 origin: int = 0) -> AsmProgram:
        statements, labels, bss, heap_size, equates = \
            self._first_pass(source, origin)
        symbols = dict(equates)
        symbols.update(bss)
        symbols.update(labels)
        items: List[Union[Instruction, DataWord]] = []
        word_map: Dict[int, int] = {}
        for statement in statements:
            try:
                emitted = self._emit(statement, symbols)
            except AssemblerError as error:
                raise AssemblerError(
                    str(error), statement.line, statement.source) from None
            for item in emitted:
                items.append(item)
                if isinstance(item, Instruction):
                    for offset, word in enumerate(encode(item)):
                        word_map[item.address + offset] = word
                else:
                    word_map[item.address] = item.value & 0xFFFF
        # Flatten to a contiguous image from the origin; ``.org`` gaps are
        # padded with NOPs so the image stays linearly decodable.
        top = max(word_map) + 1 if word_map else origin
        words = [word_map.get(address, 0x0000)
                 for address in range(origin, top)]
        entry = labels.get("main", origin)
        return AsmProgram(name=name, words=words, origin=origin, items=items,
                          labels=labels, bss_symbols=bss,
                          heap_size=heap_size, entry=entry)

    # -- pass 1: sizes, labels, directives ---------------------------------

    def _first_pass(self, source: str, origin: int):
        statements: List[_Statement] = []
        labels: Dict[str, int] = {}
        bss: Dict[str, int] = {}
        equates: Dict[str, int] = {}
        address = origin
        bss_cursor = self.ram_start

        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            match = _LABEL_RE.match(line)
            if match:
                label = match.group(1)
                if label in labels:
                    raise AssemblerError(f"duplicate label {label!r}",
                                         line_number, raw)
                labels[label] = address
                line = line[match.end():].strip()
                if not line:
                    continue
            if line.startswith("."):
                directive, _, rest = line.partition(" ")
                directive = directive.lower()
                rest = rest.strip()
                # Directive expressions may reference earlier equates
                # and .bss symbols (e.g. .equ POOL_END = pool + SIZE).
                known = {**bss, **equates}
                if directive == ".equ":
                    name, _, expr = rest.partition("=")
                    if not expr:
                        raise AssemblerError(".equ needs NAME = EXPR",
                                             line_number, raw)
                    equates[name.strip()] = _Expr(expr, known).parse()
                elif directive == ".org":
                    address = _Expr(rest, known).parse()
                elif directive == ".bss":
                    name, _, size_expr = rest.partition(",")
                    if not size_expr:
                        raise AssemblerError(".bss needs NAME, SIZE",
                                             line_number, raw)
                    size = _Expr(size_expr, known).parse()
                    bss[name.strip()] = bss_cursor
                    bss_cursor += size
                elif directive == ".dw":
                    count = len(rest.split(","))
                    statements.append(_Statement(
                        "dw", operand_text=rest, address=address,
                        words=count, line=line_number, source=raw))
                    address += count
                elif directive == ".db":
                    count = len(rest.split(","))
                    words = (count + 1) // 2
                    statements.append(_Statement(
                        "db", operand_text=rest, address=address,
                        words=words, line=line_number, source=raw))
                    address += words
                else:
                    raise AssemblerError(f"unknown directive {directive!r}",
                                         line_number, raw)
                continue
            mnemonic, _, operand_text = line.partition(" ")
            mnemonic = mnemonic.upper()
            canonical = self._canonical_mnemonic(mnemonic)
            if canonical not in OPCODES:
                raise AssemblerError(f"unknown mnemonic {mnemonic!r}",
                                     line_number, raw)
            size = OPCODES[canonical].words
            statements.append(_Statement(
                "op", mnemonic=mnemonic, operand_text=operand_text.strip(),
                address=address, words=size, line=line_number, source=raw))
            address += size
        if bss_cursor > ioports.RAM_END + 1:
            raise AssemblerError(
                f".bss reservations overflow SRAM by "
                f"{bss_cursor - ioports.RAM_END - 1} bytes")
        heap_size = bss_cursor - self.ram_start
        return statements, labels, bss, heap_size, equates

    @staticmethod
    def _canonical_mnemonic(mnemonic: str) -> str:
        if mnemonic in BRANCH_ALIASES:
            return BRANCH_ALIASES[mnemonic][0]
        if mnemonic in SREG_ALIASES:
            return SREG_ALIASES[mnemonic][0]
        if mnemonic in SYNTH_R2:
            return SYNTH_R2[mnemonic]
        if mnemonic in ("LD", "ST"):
            return mnemonic  # may still canonicalize to LDD/STD in pass 2
        return mnemonic

    # -- pass 2: operand resolution and encoding -----------------------------

    def _emit(self, st: _Statement, symbols: Dict[str, int]):
        if st.kind == "dw":
            values = [
                _Expr(part, symbols).parse() & 0xFFFF
                for part in st.operand_text.split(",")]
            return [DataWord(v, st.address + i) for i, v in enumerate(values)]
        if st.kind == "db":
            data = [
                _Expr(part, symbols).parse() & 0xFF
                for part in st.operand_text.split(",")]
            if len(data) % 2:
                data.append(0)
            return [DataWord(data[i] | (data[i + 1] << 8),
                             st.address + i // 2)
                    for i in range(0, len(data), 2)]
        return [self._emit_op(st, symbols)]

    def _emit_op(self, st: _Statement,
                 symbols: Dict[str, int]) -> Instruction:
        mnemonic = st.mnemonic
        parts = [p.strip() for p in st.operand_text.split(",")] \
            if st.operand_text else []

        if mnemonic in BRANCH_ALIASES:
            base, bit = BRANCH_ALIASES[mnemonic]
            self._arity(st, parts, 1)
            offset = self._branch_offset(parts[0], st, symbols, bits=7)
            return Instruction(base, (bit, offset), st.address)
        if mnemonic in SREG_ALIASES:
            base, bit = SREG_ALIASES[mnemonic]
            self._arity(st, parts, 0)
            return Instruction(base, (bit,), st.address)
        if mnemonic in SYNTH_R2:
            self._arity(st, parts, 1)
            d = self._register(parts[0])
            return Instruction(SYNTH_R2[mnemonic], (d, d), st.address)

        spec = OPCODES.get(mnemonic)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
        fmt = spec.fmt

        if fmt in (Format.R2, Format.MUL, Format.MOVW):
            self._arity(st, parts, 2)
            return Instruction(
                mnemonic,
                (self._register(parts[0]), self._register(parts[1])),
                st.address)
        if fmt is Format.RD:
            self._arity(st, parts, 1)
            return Instruction(mnemonic, (self._register(parts[0]),),
                               st.address)
        if fmt in (Format.IMM8, Format.ADIW):
            self._arity(st, parts, 2)
            return Instruction(
                mnemonic,
                (self._register(parts[0]), _Expr(parts[1], symbols).parse()),
                st.address)
        if fmt is Format.LDST_PTR:
            return self._emit_ldst(mnemonic, parts, st, symbols)
        if fmt is Format.LDST_DISP:
            return self._emit_ldst_disp(mnemonic, parts, st, symbols)
        if fmt is Format.LDST_DIRECT:
            self._arity(st, parts, 2)
            if mnemonic == "LDS":
                d, addr = self._register(parts[0]), \
                    _Expr(parts[1], symbols).parse()
            else:
                addr, d = _Expr(parts[0], symbols).parse(), \
                    self._register(parts[1])
            return Instruction(mnemonic, (d, addr), st.address)
        if fmt is Format.PUSHPOP:
            self._arity(st, parts, 1)
            return Instruction(mnemonic, (self._register(parts[0]),),
                               st.address)
        if fmt is Format.LPM:
            if not parts or parts == [""]:
                return Instruction("LPM", (0, "LEGACY"), st.address)
            self._arity(st, parts, 2)
            mode = parts[1].upper()
            if mode not in ("Z", "Z+"):
                raise AssemblerError(f"bad LPM mode {parts[1]!r}")
            return Instruction("LPM", (self._register(parts[0]), mode),
                               st.address)
        if fmt is Format.IO:
            self._arity(st, parts, 2)
            if mnemonic == "IN":
                return Instruction(
                    "IN",
                    (self._register(parts[0]),
                     _Expr(parts[1], symbols).parse()),
                    st.address)
            return Instruction(
                "OUT",
                (_Expr(parts[0], symbols).parse(),
                 self._register(parts[1])),
                st.address)
        if fmt is Format.IOBIT:
            self._arity(st, parts, 2)
            return Instruction(
                mnemonic,
                (_Expr(parts[0], symbols).parse(),
                 _Expr(parts[1], symbols).parse()),
                st.address)
        if fmt is Format.REL12:
            self._arity(st, parts, 1)
            offset = self._branch_offset(parts[0], st, symbols, bits=12)
            return Instruction(mnemonic, (offset,), st.address)
        if fmt is Format.BRANCH:
            self._arity(st, parts, 2)
            bit = _Expr(parts[0], symbols).parse()
            offset = self._branch_offset(parts[1], st, symbols, bits=7)
            return Instruction(mnemonic, (bit, offset), st.address)
        if fmt in (Format.SKIP_REG, Format.TFLAG):
            self._arity(st, parts, 2)
            return Instruction(
                mnemonic,
                (self._register(parts[0]),
                 _Expr(parts[1], symbols).parse()),
                st.address)
        if fmt is Format.JMPCALL:
            self._arity(st, parts, 1)
            return Instruction(
                mnemonic, (_Expr(parts[0], symbols).parse(),), st.address)
        if fmt is Format.SREG_OP:
            self._arity(st, parts, 1)
            return Instruction(
                mnemonic, (_Expr(parts[0], symbols).parse(),), st.address)
        if fmt is Format.IMPLIED:
            self._arity(st, parts, 0)
            return Instruction(mnemonic, (), st.address)
        raise AssemblerError(f"unhandled format {fmt}")  # pragma: no cover

    def _emit_ldst(self, mnemonic: str, parts: List[str], st: _Statement,
                   symbols: Dict[str, int]) -> Instruction:
        self._arity(st, parts, 2)
        if mnemonic == "LD":
            d, mode = self._register(parts[0]), parts[1].upper()
        else:
            mode, d = parts[0].upper(), self._register(parts[1])
        if mode in ("Y", "Z"):  # canonicalize to displacement-0 LDD/STD
            base = "LDD" if mnemonic == "LD" else "STD"
            return Instruction(base, (d, mode, 0), st.address)
        if mode not in PTR_MODES:
            raise AssemblerError(f"bad pointer mode {mode!r}")
        return Instruction(mnemonic, (d, mode), st.address)

    def _emit_ldst_disp(self, mnemonic: str, parts: List[str],
                        st: _Statement,
                        symbols: Dict[str, int]) -> Instruction:
        self._arity(st, parts, 2)
        if mnemonic == "LDD":
            d, ptr_text = self._register(parts[0]), parts[1]
        else:
            ptr_text, d = parts[0], self._register(parts[1])
        match = re.match(r"^([YZyz])\s*\+\s*(.+)$", ptr_text.strip())
        if not match:
            raise AssemblerError(f"bad displacement operand {ptr_text!r}")
        ptr = match.group(1).upper()
        q = _Expr(match.group(2), symbols).parse()
        return Instruction(mnemonic, (d, ptr, q), st.address)

    def _branch_offset(self, text: str, st: _Statement,
                       symbols: Dict[str, int], bits: int) -> int:
        target = _Expr(text, symbols).parse()
        offset = target - (st.address + 1)
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if not lo <= offset <= hi:
            raise AssemblerError(
                f"branch target out of range: offset {offset} words")
        return offset

    @staticmethod
    def _register(text: str) -> int:
        match = _REG_RE.match(text.strip())
        if not match:
            raise AssemblerError(f"expected register, got {text!r}")
        value = int(match.group(1))
        if value > 31:
            raise AssemblerError(f"no such register r{value}")
        return value

    @staticmethod
    def _arity(st: _Statement, parts: List[str], expected: int) -> None:
        actual = 0 if parts in ([], [""]) else len(parts)
        if actual != expected:
            raise AssemblerError(
                f"{st.mnemonic} expects {expected} operand(s), got {actual}")


def assemble(source: str, name: str = "program",
             origin: int = 0) -> AsmProgram:
    """Assemble *source* with default settings."""
    return Assembler().assemble(source, name=name, origin=origin)
