"""ATmega128L-like MCU substrate: ISA, assembler, simulator, devices."""

from .assembler import AsmProgram, Assembler, assemble
from .cpu import AvrCpu
from .disassembler import disassemble, format_instruction
from .encoding import decode, encode, instruction_words
from .instruction import DataWord, Instruction
from .isa import Format, Kind, OPCODES, OpSpec
from .memory import DataMemory, Flash

__all__ = [
    "AsmProgram", "Assembler", "assemble",
    "AvrCpu",
    "disassemble", "format_instruction",
    "decode", "encode", "instruction_words",
    "DataWord", "Instruction",
    "Format", "Kind", "OPCODES", "OpSpec",
    "DataMemory", "Flash",
]
