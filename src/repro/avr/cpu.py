"""Cycle-counting AVR CPU simulator.

The interpreter pre-decodes flash words into Python closures the first
time each address executes (flash is immutable during execution, paper
assumption III-A), so the hot loop is a dictionary-free closure call.

On top of the per-instruction thunks the CPU supports *superblock
fusion* (``fuse=True``, the default): straight-line instruction runs are
compiled — at first execution, with ``exec`` — into a single Python
closure that executes the whole run with one dispatch, accumulates
``cycles``/``instret`` once, and returns to the run loop only at block
boundaries.  A block ends at (and includes) the first instruction with
control-flow, stack-pointer, I/O-port, or interrupt-flag side effects,
or ends *before* a trap-region word.  Interrupts, device alarms, run
limits and ``until()`` are re-checked at block boundaries; exact
``max_cycles``/``max_instructions`` stop semantics are preserved by
falling back to single-instruction stepping when a block could cross a
limit.

Two integration points exist for the SenSmart kernel:

* a *trap region* of flash word addresses: a ``JMP``/``CALL`` whose target
  lies inside the region — or the PC landing there directly — invokes the
  registered trap handler instead of executing machine code.  SenSmart's
  trampolines live there;
* *devices* registered with the CPU schedule :class:`~repro.sim.Event`
  callbacks on the CPU's event queue (the CPU is a
  :class:`~repro.sim.SimClock`); events fire between instructions
  (between superblocks when fusing) and can raise interrupts or wake
  the CPU from sleep.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import InvalidInstruction, MemoryFault, SimulationError
from ..sim.events import INFINITY, SimClock
from . import ioports
from .encoding import EncodingError, decode
from .instruction import Instruction
from .memory import DataMemory, Flash

# SREG flag masks.
C, Z, N, V, S, H, T, I = (1 << b for b in range(8))
_ARITH = C | Z | N | V | S | H
_LOGIC = Z | N | V | S
_SHIFT = C | Z | N | V | S


def _flags_add(a: int, b: int, carry_in: int, res: int) -> int:
    """SREG bits (C,Z,N,V,S,H) for an 8-bit addition."""
    full = a + b + carry_in
    f = 0
    if full > 0xFF:
        f |= C
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N
    if (~(a ^ b) & (a ^ res)) & 0x80:
        f |= V
    if ((f >> 2) ^ (f >> 3)) & 1:  # S = N xor V
        f |= S
    if ((a & 0xF) + (b & 0xF) + carry_in) > 0xF:
        f |= H
    return f


def _flags_sub(a: int, b: int, carry_in: int, res: int) -> int:
    """SREG bits (C,Z,N,V,S,H) for an 8-bit subtraction ``a - b - cin``."""
    f = 0
    if b + carry_in > a:
        f |= C
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N
    if ((a ^ b) & (a ^ res)) & 0x80:
        f |= V
    if ((f >> 2) ^ (f >> 3)) & 1:
        f |= S
    if (b & 0xF) + carry_in > (a & 0xF):
        f |= H
    return f


def _flags_logic(res: int) -> int:
    """SREG bits for AND/OR/EOR: V cleared, S = N."""
    f = 0
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N | S
    return f


#: Default member cap per superblock: bounds how far the exact-stop
#: fallback (see :meth:`AvrCpu.run`) may have to single-step near a
#: limit.  Per-CPU override via ``AvrCpu(max_block=...)`` /
#: ``KernelConfig.max_block_members``.
_MAX_BLOCK = 48


class _CachedBlock:
    """One compiled superblock variant in a :class:`SuperblockCache`.

    Holds the shareable compilation products: the code object, the
    site-specific flag tables it references, and the bookkeeping needed
    to rebind it to another CPU (``term_addr`` for the generic-thunk
    terminator, ``trap``/``spec_key`` for specialized trap terminators).
    """

    __slots__ = ("code", "tables", "icount", "cost", "term_addr", "trap",
                 "spec_key")

    def __init__(self, code, tables, icount, cost, term_addr, trap,
                 spec_key):
        self.code = code
        self.tables = tables
        self.icount = icount
        self.cost = cost
        self.term_addr = term_addr
        self.trap = trap          # (site, target, is_call) or None
        self.spec_key = spec_key  # specialization constants, or None


class SuperblockCache:
    """Cross-CPU superblock translation cache.

    Superblock compilation depends only on the flash image, the data
    memory size, the trap ranges, and — for specialized trap
    terminators — the constants the specializer baked in.  All of that
    is captured in the key ``(base_key, pc)`` plus the per-variant
    ``spec_key``, so N nodes burned with the same image (the common
    network-simulation shape) compile each hot block once and share the
    code objects; every further node only pays an ``exec`` to rebind
    the code to its own registers and memory.
    """

    def __init__(self, max_groups: int = 16384):
        self.groups: dict = {}  # (base_key, pc) -> {spec_key: block}
        self.max_groups = max_groups
        self.hits = 0
        self.misses = 0
        #: (base_key, pc, spec_key) -> times actually compiled; the
        #: exactly-once sharing property asserts max(...) == 1.
        self.compile_counts: dict = {}

    def store(self, base_key, pc: int, block: _CachedBlock) -> None:
        key = (base_key, pc)
        group = self.groups.get(key)
        if group is None:
            if len(self.groups) >= self.max_groups:
                self.groups.pop(next(iter(self.groups)))  # FIFO bound
            group = self.groups[key] = {}
        group[block.spec_key] = block
        count_key = (base_key, pc, block.spec_key)
        self.compile_counts[count_key] = \
            self.compile_counts.get(count_key, 0) + 1


#: Process-wide default cache (pass ``block_cache=False`` to opt out).
_GLOBAL_BLOCK_CACHE = SuperblockCache()


# -- precomputed SREG tables for fused code ------------------------------------
#
# Superblock members replace the branchy flag computations of the
# per-instruction closures with one table index.  Every table is built
# from the same _flags_* helpers the closures use, so the two execution
# modes cannot disagree.  The 64K add/sub tables are built lazily on the
# first fused ADD/SUB; the 256-entry tables are cheap enough to build at
# import.

def _inc_dec_flags(res: int, overflow_at: int) -> int:
    f = 0
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N
    if res == overflow_at:
        f |= V
    if ((f >> 2) ^ (f >> 3)) & 1:
        f |= S
    return f


def _shift_flags(res: int, carry_out: int) -> int:
    f = carry_out
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N
    if bool(f & N) != bool(carry_out):  # V = N xor C
        f |= V
    if ((f >> 2) ^ (f >> 3)) & 1:
        f |= S
    return f


def _neg_flags(a: int) -> int:
    res = (-a) & 0xFF
    f = C if res != 0 else Z
    if res & 0x80:
        f |= N
    if res == 0x80:
        f |= V
    if ((f >> 2) ^ (f >> 3)) & 1:
        f |= S
    if (res | a) & 0x08:
        f |= H
    return f


_LOGIC_TABLE = [_flags_logic(res) for res in range(256)]
_INC_TABLE = [_inc_dec_flags(res, 0x80) for res in range(256)]
_DEC_TABLE = [_inc_dec_flags(res, 0x7F) for res in range(256)]
_LSR_TABLE = [_shift_flags(a >> 1, a & 1) for a in range(256)]
_ASR_TABLE = [_shift_flags((a >> 1) | (a & 0x80), a & 1) for a in range(256)]
_ROR_TABLES = tuple(
    [_shift_flags((a >> 1) | (cin << 7), a & 1) for a in range(256)]
    for cin in (0, 1))
_NEG_TABLE = [_neg_flags(a) for a in range(256)]

_ADD_TABLES: List[Optional[List[int]]] = [None, None]
_SUB_TABLES: List[Optional[List[int]]] = [None, None]
_SUB_ROWS: dict = {}


def _add_table(cin: int) -> List[int]:
    """64K table: flags of ``a + b + cin`` indexed by ``(a << 8) | b``."""
    table = _ADD_TABLES[cin]
    if table is None:
        table = [0] * 65536
        for a in range(256):
            base = a << 8
            for b in range(256):
                table[base | b] = _flags_add(a, b, cin,
                                             (a + b + cin) & 0xFF)
        _ADD_TABLES[cin] = table
    return table


def _sub_table(cin: int) -> List[int]:
    """64K table: flags of ``a - b - cin`` indexed by ``(a << 8) | b``."""
    table = _SUB_TABLES[cin]
    if table is None:
        table = [0] * 65536
        for a in range(256):
            base = a << 8
            for b in range(256):
                table[base | b] = _flags_sub(a, b, cin,
                                             (a - b - cin) & 0xFF)
        _SUB_TABLES[cin] = table
    return table


def _sub_row(k: int, cin: int) -> List[int]:
    """256-entry table: flags of ``a - k - cin`` for a constant *k*."""
    row = _SUB_ROWS.get((k, cin))
    if row is None:
        row = [_flags_sub(a, k, cin, (a - k - cin) & 0xFF)
               for a in range(256)]
        _SUB_ROWS[(k, cin)] = row
    return row


class AvrCpu(SimClock):
    """The simulated ATmega128L core.

    Inherits ``cycles``/``idle_cycles`` and the :class:`EventQueue`
    (``self.events``) from :class:`~repro.sim.SimClock`: the CPU's
    cycle counter *is* the simulated clock, and every timed effect —
    device completions, timer compares, kernel virtual timers, network
    byte arrivals — is an event on that queue.
    """

    def __init__(self, flash: Flash, memory: Optional[DataMemory] = None,
                 clock_hz: int = 7_372_800, fuse: bool = True,
                 block_cache=None, max_block: int = _MAX_BLOCK):
        """*block_cache*: ``None`` joins the process-wide
        :class:`SuperblockCache`, ``False`` disables cross-CPU block
        sharing, or pass an explicit cache instance.  *max_block* caps
        the members fused per superblock (and per trace segment)."""
        SimClock.__init__(self)
        self.flash = flash
        self.mem = memory if memory is not None else DataMemory()
        self.clock_hz = clock_hz
        self.fuse = fuse
        self.r = bytearray(32)
        self.pc = 0
        self.sp = ioports.RAM_END
        self.sreg = 0
        self.instret = 0
        self.sleeping = False
        self.halted = False
        self._exec: List[Optional[Callable[[], None]]] = \
            [None] * flash.size_words
        #: Superblock cache: pc -> (closure, instructions, member cycles).
        self._blocks: List[Optional[Tuple]] = [None] * flash.size_words
        self._devices: List = []
        self._pending_irqs: Deque[int] = deque()
        self._trap_ranges: List = []  # [(lo, hi)] word-address ranges
        self._trap_lo = -1  # envelope for the hot-path check
        self._trap_hi = -1
        self._trap_handler: Optional[Callable] = None
        self._trap_thunk_factory: Optional[Callable] = None
        self._trap_inline_factory: Optional[Callable] = None
        if block_cache is None:
            self._block_cache: Optional[SuperblockCache] = \
                _GLOBAL_BLOCK_CACHE
        elif block_cache is False:
            self._block_cache = None
        else:
            self._block_cache = block_cache
        self._cache_base_key = None  # lazy (fingerprint, ...) tuple
        self._max_block = max_block
        #: Optional trace compiler (repro.avr.trace.TraceCompiler);
        #: consulted by _fuse_block before plain superblock fusion.
        self._tracer = None
        # Run limits as seen by self-looping superblocks; _run_fused
        # refreshes them on every run() call.
        self._run_mc = float("inf")
        self._run_mi = float("inf")
        self._run_until: Optional[Callable] = None
        self.profile: Optional[List[int]] = None  # per-PC hit counts
        # Any later re-burn of flash (dynamic loading) must drop decoded
        # thunks and fused blocks, even if the burner forgets to ask.
        flash.add_burn_listener(self.invalidate_decode)

    # -- configuration --------------------------------------------------------

    def attach_device(self, device) -> None:
        """Attach a device (timer/ADC/...).

        Devices install I/O hooks and schedule their timed effects on
        ``self.events``; there is no per-instruction polling.
        """
        self._devices.append(device)
        device.attach(self)

    def set_trap_region(self, lo: int, hi: int, handler,
                        thunk_factory: Optional[Callable] = None,
                        inline_factory: Optional[Callable] = None) -> None:
        """Route execution entering flash words [*lo*, *hi*) to *handler*.

        ``handler(cpu, site, target, is_call)`` receives the word address of
        the patched site (``-1`` if the PC landed in the region without a
        patched ``JMP/CALL``, e.g. through ``IJMP``), the trampoline word
        address, and whether the site used ``CALL`` semantics.

        ``thunk_factory(cpu, site, target, is_call)``, when given, may
        return a specialized closure for a patched site, resolved once at
        decode time (the kernel uses this to pre-bind its dispatch);
        returning ``None`` falls back to calling *handler*.

        ``inline_factory(cpu, site, target, is_call, invalidate)``, when
        given, may return ``(lines, bindings, spec_key)`` — Python
        statements the superblock compiler splices in as the block's
        terminator in place of the thunk call, the namespace entries
        they need, and a hashable key of the constants they bake in
        (see :class:`repro.kernel.specialize.TrapSpecializer`).
        """
        self._trap_ranges = [(lo, hi)]
        self._trap_handler = handler
        self._trap_thunk_factory = thunk_factory
        self._trap_inline_factory = inline_factory
        self._update_trap_envelope()
        # Invalidate decoded thunks and fused blocks: targets may now trap.
        self.invalidate_decode()

    def set_tracer(self, tracer) -> None:
        """Install a trace compiler; ``_fuse_block`` consults it first.

        ``tracer.entry_for(pc)`` may return a ``(closure, icount, cost)``
        dispatch entry covering several chained superblocks, or ``None``
        to fall back to plain fusion.
        """
        self._tracer = tracer
        self.invalidate_decode()

    def add_trap_region(self, lo: int, hi: int) -> None:
        """Add another trapped range (dynamic task loading appends new
        trampoline regions after the original image)."""
        self._trap_ranges.append((lo, hi))
        self._update_trap_envelope()
        self.invalidate_decode()

    def _update_trap_envelope(self) -> None:
        if self._trap_ranges:
            self._trap_lo = min(lo for lo, _ in self._trap_ranges)
            self._trap_hi = max(hi for _, hi in self._trap_ranges)
        else:
            self._trap_lo = self._trap_hi = -1

    def in_trap_region(self, address: int) -> bool:
        if not self._trap_lo <= address < self._trap_hi:
            return False
        return any(lo <= address < hi for lo, hi in self._trap_ranges)

    def invalidate_decode(self) -> None:
        """Drop decoded closures and fused blocks (after re-burning flash).

        Clears the caches *in place*: the run loop keeps direct references
        to them, and a trap handler may invalidate mid-run (dynamic task
        loading re-burns flash and appends trap regions).
        """
        self._exec[:] = [None] * self.flash.size_words
        self._blocks[:] = [None] * self.flash.size_words
        self._cache_base_key = None  # flash/trap geometry may have changed

    def enable_profiling(self) -> None:
        """Count executions per PC (Avrora-style flat profile).

        Adds one array increment per instruction; enable only when the
        profile is wanted.
        """
        self.profile = [0] * self.flash.size_words
        self.invalidate_decode()

    def raise_interrupt(self, vector: int) -> None:
        self._pending_irqs.append(vector)
        self.sleeping = False

    # -- data-space access ------------------------------------------------------

    def data_read(self, address: int) -> int:
        if address < 0x20:
            return self.r[address]
        if address == ioports.SPL:
            return self.sp & 0xFF
        if address == ioports.SPH:
            return (self.sp >> 8) & 0xFF
        if address == ioports.SREG:
            return self.sreg
        return self.mem.read(address)

    def data_write(self, address: int, value: int) -> None:
        value &= 0xFF
        if address < 0x20:
            self.r[address] = value
            return
        if address == ioports.SPL:
            self.sp = (self.sp & 0xFF00) | value
            return
        if address == ioports.SPH:
            self.sp = (value << 8) | (self.sp & 0x00FF)
            return
        if address == ioports.SREG:
            self.sreg = value
            return
        self.mem.write(address, value)

    def push_byte(self, value: int) -> None:
        self.data_write(self.sp, value)
        self.sp = (self.sp - 1) & 0xFFFF

    def pop_byte(self) -> int:
        self.sp = (self.sp + 1) & 0xFFFF
        return self.data_read(self.sp)

    def push_word(self, value: int) -> None:
        self.push_byte(value & 0xFF)
        self.push_byte((value >> 8) & 0xFF)

    def pop_word(self) -> int:
        high = self.pop_byte()
        return (high << 8) | self.pop_byte()

    # -- register-pair helpers ---------------------------------------------------

    def get_pair(self, lo_reg: int) -> int:
        return self.r[lo_reg] | (self.r[lo_reg + 1] << 8)

    def set_pair(self, lo_reg: int, value: int) -> None:
        self.r[lo_reg] = value & 0xFF
        self.r[lo_reg + 1] = (value >> 8) & 0xFF

    # -- execution -----------------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one instruction (or service one interrupt)."""
        if self._pending_irqs and (self.sreg & I):
            self._enter_interrupt(self._pending_irqs.popleft())
            return
        pc = self.pc
        if self._trap_lo <= pc < self._trap_hi and \
                self.in_trap_region(pc):
            self._trap_handler(self, -1, pc, False)
            self.instret += 1
            return
        thunk = self._exec[pc]
        if thunk is None:
            thunk = self._decode_at(pc)
        thunk()
        self.instret += 1

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None,
            until: Optional[Callable[["AvrCpu"], bool]] = None) -> None:
        """Run until halted, a limit is reached, or *until(cpu)* is true."""
        # Publish the run limits before firing carried-over events: an
        # event callback may park/dispatch (kernel idle) and must see
        # this run's budget, not a stale one.
        self._run_mc = INFINITY if max_cycles is None else max_cycles
        self._run_mi = INFINITY if max_instructions is None \
            else max_instructions
        self._run_until = until
        # An event already due (armed between runs, or carried over a
        # limit stop) fires before the first dispatch, so a raised
        # interrupt is taken before any further instruction executes.
        if self.cycles >= self.events.next_due and not self.halted:
            self.events.run_due(self.cycles)
        try:
            if self.fuse:
                self._run_fused(max_cycles, max_instructions, until)
            else:
                self._run_stepwise(max_cycles, max_instructions, until)
        except IndexError as error:
            # Corrupted control flow (e.g. an injected bit flip in a
            # saved return address) can push PC or a pointer past the
            # modelled address spaces; the raw list access then raises
            # IndexError inside a thunk.  Surface it as the memory
            # fault it models rather than a host-level crash.
            raise MemoryFault(self.pc, "wild access") from error

    def _run_stepwise(self, max_cycles, max_instructions, until) -> None:
        """Per-instruction dispatch: limits and events checked each step."""
        events = self.events
        while not self.halted:
            if self.sleeping:
                if not self._advance_to_next_event(max_cycles):
                    return
                continue
            self.step()
            if self.cycles >= events.next_due:
                events.run_due(self.cycles)
            if max_cycles is not None and self.cycles >= max_cycles:
                return
            if max_instructions is not None and \
                    self.instret >= max_instructions:
                return
            if until is not None and until(self):
                return

    def _run_fused(self, max_cycles, max_instructions, until) -> None:
        """Superblock dispatch: one closure call per straight-line run.

        Interrupts, due events, limits and ``until()`` are checked
        once per block.  A block that could cross ``max_cycles`` or
        ``max_instructions`` is not dispatched; the loop single-steps
        instead, so the stop point is bit-identical to stepwise mode.
        """
        blocks = self._blocks  # cleared in place by invalidate_decode
        irqs = self._pending_irqs
        events = self.events
        mc = self._run_mc  # published by run() for self-looping blocks
        mi = self._run_mi
        while not self.halted:
            if self.sleeping:
                if not self._advance_to_next_event(max_cycles):
                    return
                continue
            if irqs and (self.sreg & I):
                self._enter_interrupt(irqs.popleft())
            else:
                pc = self.pc
                if self._trap_lo <= pc < self._trap_hi and \
                        self.in_trap_region(pc):
                    self._trap_handler(self, -1, pc, False)
                    self.instret += 1
                else:
                    entry = blocks[pc]
                    if entry is None:
                        entry = self._fuse_block(pc)
                    if self.instret + entry[1] > mi or \
                            self.cycles + entry[2] >= mc:
                        self.step()  # exact-stop epilogue: finish stepwise
                    else:
                        entry[0]()
            if self.cycles >= events.next_due:
                events.run_due(self.cycles)
            if self.cycles >= mc or self.instret >= mi:
                return
            if until is not None and until(self):
                return

    def _advance_to_next_event(self, max_cycles: Optional[int]) -> bool:
        """Fast-forward a sleeping CPU to the next scheduled event.

        Returns False when there is nothing to wake up for (deadlock) or
        the cycle limit was consumed by the skip.
        """
        wake = self.events.next_due
        if wake == INFINITY:
            raise SimulationError(
                "CPU is sleeping with no scheduled event to wake it")
        if max_cycles is not None and wake >= max_cycles:
            if max_cycles > self.cycles:
                self.idle_cycles += max_cycles - self.cycles
                self.cycles = max_cycles
            return False
        if wake > self.cycles:
            self.idle_cycles += wake - self.cycles
            self.cycles = wake
        self.events.run_due(self.cycles)
        if self._pending_irqs:
            self.sleeping = False
        return True

    def _enter_interrupt(self, vector: int) -> None:
        self.push_word(self.pc)
        self.sreg &= ~I
        self.pc = vector
        self.cycles += 4
        self.sleeping = False

    # -- decoding into closures ---------------------------------------------------

    def _decode_at(self, pc: int) -> Callable[[], None]:
        word = self.flash.word(pc)
        next_word = self.flash.word(pc + 1) \
            if pc + 1 < self.flash.size_words else None
        try:
            instr = decode(word, next_word, pc)
        except EncodingError:
            raise InvalidInstruction(pc, word) from None
        thunk = self._build(instr)
        if self.profile is not None:
            inner = thunk
            profile = self.profile

            def thunk(address=pc, inner=inner, profile=profile):
                profile[address] += 1
                inner()
        self._exec[pc] = thunk
        return thunk

    def _skip_cycles_and_target(self, after: int) -> (int, int):
        """(extra cycles, new pc) when skipping the instruction at *after*."""
        size = self.flash.instruction_size(after)
        return size, after + size

    # -- superblock fusion --------------------------------------------------------

    def _fuse_block(self, pc: int) -> Tuple[Callable[[], None], int, int]:
        """Fuse the straight-line run starting at *pc* into one closure.

        Members are emitted as inline Python source and compiled with
        ``exec``; the terminating instruction (control flow / SP / I/O /
        interrupt-flag side effects) executes through its normal thunk —
        or is inlined too for the hot unconditional/conditional branches
        and, when an ``inline_factory`` is registered, for trap sites
        (the specialized trap code becomes the block terminator).
        Cycle accumulation order matches stepwise execution exactly:
        member cycles land on the clock *before* the terminator runs, so
        terminators (and trap handlers) observe identical ``cpu.cycles``.

        Compiled blocks are shared through the :class:`SuperblockCache`
        (keyed by flash fingerprint, memory size, trap ranges, pc, and
        the trap specialization key), so an identically-burned CPU
        rebinds the cached code object instead of recompiling.

        Returns and caches ``(closure, instruction_count, member_cycles)``.
        """
        if self._tracer is not None and self.profile is None:
            entry = self._tracer.entry_for(pc)
            if entry is not None:
                self._blocks[pc] = entry
                return entry
        base = self._cache_base()
        if base is not None:
            entry = self._from_cache(base, pc)
            if entry is not None:
                return entry
        namespace = {
            "cpu": self, "r": self.r, "mem": self.mem.data,
            "flash": self.flash, "profile": self.profile,
            "lf": _LOGIC_TABLE, "incf": _INC_TABLE, "decf": _DEC_TABLE,
            "lsrf": _LSR_TABLE, "asrf": _ASR_TABLE, "negf": _NEG_TABLE,
            "rorf0": _ROR_TABLES[0], "rorf1": _ROR_TABLES[1],
        }
        lines: List[str] = []
        member_addrs: List[int] = []
        cost = 0
        uses_sreg = False
        cur = pc
        term = None
        term_ins = None
        trap_info = None
        while len(member_addrs) < self._max_block:
            if self.in_trap_region(cur):
                break  # never fuse across a trap-region boundary
            if cur == pc:
                # First instruction: decode errors surface exactly as in
                # stepwise execution (and the thunk doubles as fallback).
                ins = self._decode_instruction(pc)
            else:
                try:
                    ins = self._decode_instruction(cur)
                except (InvalidInstruction, MemoryFault):
                    break  # stop fusing; raise only if actually reached
            member = self._member_src(ins, namespace, len(member_addrs))
            if member is None:
                term = self._exec[cur]
                if term is None:
                    term = self._decode_at(cur)
                term_ins = ins
                if ins.mnemonic in ("JMP", "CALL") and \
                        self.in_trap_region(ins.operands[0]):
                    trap_info = (ins.address, ins.operands[0],
                                 ins.mnemonic == "CALL")
                break
            src, cycles, touches_sreg = member
            lines.extend(src)
            member_addrs.append(cur)
            cost += cycles
            uses_sreg = uses_sreg or touches_sreg
            cur = ins.next_address

        count = len(member_addrs)
        body: Optional[List[str]] = None
        spec_key = None
        term_addr: Optional[int] = None
        trap_spec = None
        if trap_info is not None and self.profile is None and \
                self._trap_inline_factory is not None:
            site, target, is_call = trap_info
            trap_spec = self._trap_inline_factory(
                self, site, target, is_call,
                invalidate=f"k_bl[{pc}] = None",
                block=(pc, lines, cost, count, uses_sreg))
        if trap_spec is not None:
            trap_lines, trap_bindings, spec_key, trap_full = trap_spec
            namespace.update(trap_bindings)
            if trap_full:
                # The factory produced a complete closure body (a
                # self-looping backward-branch trap): members, guard
                # and all accounting live inside it.
                body = list(trap_lines)
                icount = count + 1
        if body is None and term_ins is not None and self.profile is None:
            body = self._self_loop_body(term_ins, lines, cost, count,
                                        uses_sreg, pc)
            if body is not None:
                icount = count + 1
        if body is None:
            body = []
            if uses_sreg:
                body.append("sr = cpu.sreg")
            body.extend(lines)
            if self.profile is not None:
                for address in member_addrs:
                    body.append(f"profile[{address}] += 1")
            if uses_sreg:
                body.append("cpu.sreg = sr")
            if trap_spec is not None:
                if cost:
                    body.append(f"cpu.cycles += {cost}")
                if count:
                    body.append(f"cpu.instret += {count}")
                body.extend(trap_lines)
                body.append("cpu.instret += 1")
                icount = count + 1
            else:
                inline_term = None
                if term_ins is not None and self.profile is None:
                    inline_term = self._inline_term_src(term_ins, cost,
                                                        count, uses_sreg)
                if inline_term is not None:
                    body.extend(inline_term)
                    icount = count + 1
                elif term is not None:
                    if cost:
                        body.append(f"cpu.cycles += {cost}")
                    if count:
                        body.append(f"cpu.instret += {count}")
                    body.append("t()")
                    body.append("cpu.instret += 1")
                    icount = count + 1
                    term_addr = cur
                else:
                    # Block stopped before a trap region / undecodable
                    # word / the member cap: leave pc on the next
                    # unexecuted word.
                    body.append(f"cpu.pc = {cur}")
                    if cost:
                        body.append(f"cpu.cycles += {cost}")
                    body.append(f"cpu.instret += {count}")
                    icount = count
        namespace["t"] = term
        source = "def _blk():\n" + "\n".join(
            "    " + line for line in body)
        code = compile(source, f"<superblock@{pc:#06x}>", "exec")
        exec(code, namespace)
        entry = (namespace["_blk"], icount, cost)
        self._blocks[pc] = entry
        if base is not None:
            tables = {name: value for name, value in namespace.items()
                      if name[0] in "tu" and name[1:].isdigit()}
            self._block_cache.store(base, pc, _CachedBlock(
                code=code, tables=tables, icount=icount, cost=cost,
                term_addr=term_addr, trap=trap_info, spec_key=spec_key))
        return entry

    def _cache_base(self):
        """Cross-CPU cache key prefix, or None when caching is off.

        Profiling wraps per-instruction thunks and emits per-member
        counter lines, so profiled compilations never enter the cache.
        """
        if self._block_cache is None or self.profile is not None:
            return None
        if self._cache_base_key is None:
            self._cache_base_key = (self.flash.fingerprint(),
                                    self.mem.size,
                                    tuple(self._trap_ranges))
        return self._cache_base_key

    def _from_cache(self, base, pc: int):
        """Rebind a cached superblock to this CPU, or None on miss.

        A trap-terminated group may hold several variants: the generic
        thunk-calling block (``spec_key None``) plus one per
        specialization the factory produced.  The factory is consulted
        first so this CPU lands on the variant matching its *current*
        constants; a missing variant falls through to a full fuse,
        which stores it for the next node.
        """
        cache = self._block_cache
        group = cache.groups.get((base, pc))
        if group is None:
            cache.misses += 1
            return None
        trap = next((block.trap for block in group.values()
                     if block.trap is not None), None)
        spec_key = None
        bindings = None
        if trap is not None and self._trap_inline_factory is not None:
            site, target, is_call = trap
            result = self._trap_inline_factory(
                self, site, target, is_call,
                invalidate=f"k_bl[{pc}] = None")
            if result is not None:
                _, bindings, spec_key, _ = result
        block = group.get(spec_key)
        if block is None:
            cache.misses += 1
            return None
        cache.hits += 1
        ns = {
            "cpu": self, "r": self.r, "mem": self.mem.data,
            "flash": self.flash, "profile": None,
            "lf": _LOGIC_TABLE, "incf": _INC_TABLE, "decf": _DEC_TABLE,
            "lsrf": _LSR_TABLE, "asrf": _ASR_TABLE, "negf": _NEG_TABLE,
            "rorf0": _ROR_TABLES[0], "rorf1": _ROR_TABLES[1],
        }
        ns.update(block.tables)
        if spec_key is not None:
            ns.update(bindings)
        term = None
        if block.term_addr is not None:
            term = self._exec[block.term_addr]
            if term is None:
                term = self._decode_at(block.term_addr)
        ns["t"] = term
        exec(block.code, ns)
        entry = (ns["_blk"], block.icount, block.cost)
        self._blocks[pc] = entry
        return entry

    def _decode_instruction(self, pc: int) -> Instruction:
        word = self.flash.word(pc)
        next_word = self.flash.word(pc + 1) \
            if pc + 1 < self.flash.size_words else None
        try:
            return decode(word, next_word, pc)
        except EncodingError:
            raise InvalidInstruction(pc, word) from None

    def _member_src(self, ins: Instruction, ns: dict, uid: int):
        """Inline source for a fusible instruction, or None.

        Returns ``(lines, cycles, touches_sreg)``.  Fusible means: fixed
        cycle cost, sequential control flow, and no side effects outside
        registers, SREG (I excluded), and static SRAM — anything that
        touches SP, an I/O port, the I flag, or a dynamic address stays
        a block terminator so device hooks and interrupt delivery keep
        instruction-boundary semantics.  Member templates compute the
        exact SREG bits of the closures in :meth:`_build` — mostly via
        the precomputed flag tables — and keep the status register in
        the block-local ``sr``.  Site-specific tables are bound into
        *ns* under names derived from *uid*.
        """
        parts = self._member_parts(ins, ns, uid)
        if parts is None:
            return None
        effect, flags, cycles, touches, _ = parts
        return (effect + flags, cycles, touches)

    def _member_parts(self, ins: Instruction, ns: dict, uid: int):
        """Split member source for the trace compiler, or None.

        Returns ``(effect_lines, flag_lines, cycles, touches_sreg,
        preds)``: the register/memory effect, the (separable) SREG
        update, the cycle cost, whether any line touches ``sr``, and a
        dict of flag-bit -> predicate expression valid *after* the
        effect lines — used by traces to test a branch condition
        directly on the result and defer (or elide) the flag
        computation.  ``effect + flags`` is exactly the
        :meth:`_member_src` line list, so both tiers compile identical
        semantics from one template.
        """
        m = ins.mnemonic
        ops = ins.operands
        if m in ("ADD", "ADC"):
            d, rr = ops
            ns[f"t{uid}"] = _add_table(0)
            preds = {Z: f"not r[{d}]", N: f"r[{d}] & 0x80"}
            if m == "ADD":
                return ([f"a = r[{d}]; b = r[{rr}]",
                         f"r[{d}] = (a + b) & 0xFF"],
                        [f"sr = (sr & ~{_ARITH}) | t{uid}[(a << 8) | b]"],
                        1, True, preds)
            ns[f"u{uid}"] = _add_table(1)
            return ([f"a = r[{d}]; b = r[{rr}]; cin = sr & 1",
                     f"r[{d}] = (a + b + cin) & 0xFF"],
                    [f"sr = (sr & ~{_ARITH}) | "
                     f"(u{uid} if cin else t{uid})[(a << 8) | b]"],
                    1, True, preds)
        if m in ("SUB", "CP"):
            d, rr = ops
            ns[f"t{uid}"] = _sub_table(0)
            effect = [f"a = r[{d}]; b = r[{rr}]"]
            if m == "SUB":
                effect.append(f"r[{d}] = (a - b) & 0xFF")
                preds = {Z: f"not r[{d}]", N: f"r[{d}] & 0x80",
                         C: "b > a"}
            else:
                preds = {Z: "a == b", N: "(a - b) & 0x80", C: "b > a"}
            return (effect,
                    [f"sr = (sr & ~{_ARITH}) | t{uid}[(a << 8) | b]"],
                    1, True, preds)
        if m in ("SBC", "CPC"):
            d, rr = ops
            ns[f"t{uid}"] = _sub_table(0)
            ns[f"u{uid}"] = _sub_table(1)
            effect = [f"a = r[{d}]; b = r[{rr}]; cin = sr & 1"]
            if m == "SBC":
                effect.append(f"r[{d}] = (a - b - cin) & 0xFF")
            # Z only survives if it was already set.
            return (effect,
                    [f"f = (u{uid} if cin else t{uid})[(a << 8) | b]",
                     f"sr = (sr & ~{_ARITH}) | (f & ~{Z}) | "
                     f"(f & {Z} & sr)"],
                    1, True, {})
        if m in ("AND", "OR", "EOR"):
            d, rr = ops
            op = {"AND": "&", "OR": "|", "EOR": "^"}[m]
            return ([f"res = r[{d}] {op} r[{rr}]",
                     f"r[{d}] = res"],
                    [f"sr = (sr & ~{_LOGIC}) | lf[res]"],
                    1, True, {Z: "not res", N: "res & 0x80"})
        if m == "MOV":
            d, rr = ops
            return ([f"r[{d}] = r[{rr}]"], [], 1, False, {})
        if m == "MOVW":
            d, rr = ops
            return ([f"r[{d}] = r[{rr}]", f"r[{d + 1}] = r[{rr + 1}]"],
                    [], 1, False, {})
        if m == "MUL":
            d, rr = ops
            return ([f"res = r[{d}] * r[{rr}]",
                     "r[0] = res & 0xFF",
                     "r[1] = (res >> 8) & 0xFF"],
                    [f"f = {C} if res & 0x8000 else 0",
                     f"if res == 0: f |= {Z}",
                     f"sr = (sr & ~{C | Z}) | f"],
                    2, True, {Z: "not res", C: "res & 0x8000"})
        if m in ("SUBI", "CPI"):
            d, k = ops
            ns[f"t{uid}"] = _sub_row(k, 0)
            effect = [f"a = r[{d}]"]
            if m == "SUBI":
                effect.append(f"r[{d}] = (a - {k}) & 0xFF")
                preds = {Z: f"not r[{d}]", N: f"r[{d}] & 0x80",
                         C: f"{k} > a"}
            else:
                preds = {Z: f"a == {k}", N: f"(a - {k}) & 0x80",
                         C: f"{k} > a"}
            return (effect, [f"sr = (sr & ~{_ARITH}) | t{uid}[a]"],
                    1, True, preds)
        if m == "SBCI":
            d, k = ops
            ns[f"t{uid}"] = _sub_row(k, 0)
            ns[f"u{uid}"] = _sub_row(k, 1)
            return ([f"a = r[{d}]; cin = sr & 1",
                     f"r[{d}] = (a - {k} - cin) & 0xFF"],
                    [f"f = (u{uid} if cin else t{uid})[a]",
                     f"sr = (sr & ~{_ARITH}) | (f & ~{Z}) | "
                     f"(f & {Z} & sr)"],
                    1, True, {})
        if m in ("ANDI", "ORI"):
            d, k = ops
            op = "&" if m == "ANDI" else "|"
            return ([f"res = r[{d}] {op} {k}",
                     f"r[{d}] = res"],
                    [f"sr = (sr & ~{_LOGIC}) | lf[res]"],
                    1, True, {Z: "not res", N: "res & 0x80"})
        if m == "LDI":
            d, k = ops
            return ([f"r[{d}] = {k}"], [], 1, False, {})
        if m in ("ADIW", "SBIW"):
            d, k = ops
            # Flag nibble per (res15, val15) quadrant, precomputed from
            # the closure's V/C/Z/N/S logic (k is 1..63, so Z is only
            # reachable in the quadrants listed).
            if m == "ADIW":
                expr = f"(v + {k}) & 0xFFFF"
                quad = [f"if res & 0x8000:",
                        f"    sr = (sr & ~{_SHIFT}) | "
                        f"({N | S} if v & 0x8000 else {N | V})",
                        f"elif v & 0x8000:",
                        f"    sr = (sr & ~{_SHIFT}) | "
                        f"({C | Z} if res == 0 else {C})",
                        f"else:",
                        f"    sr = sr & ~{_SHIFT}"]
                carry = "(v & ~res) & 0x8000"
            else:
                expr = f"(v - {k}) & 0xFFFF"
                quad = [f"if res & 0x8000:",
                        f"    sr = (sr & ~{_SHIFT}) | "
                        f"({N | S} if v & 0x8000 else {C | N | S})",
                        f"elif v & 0x8000:",
                        f"    sr = (sr & ~{_SHIFT}) | {V | S}",
                        f"else:",
                        f"    sr = (sr & ~{_SHIFT}) | "
                        f"({Z} if res == 0 else 0)"]
                carry = "(res & ~v) & 0x8000"
            return ([f"v = r[{d}] | (r[{d + 1}] << 8)",
                     f"res = {expr}",
                     f"r[{d}] = res & 0xFF",
                     f"r[{d + 1}] = res >> 8"],
                    quad, 2, True,
                    {Z: "not res", N: "res & 0x8000", C: carry})
        if m == "COM":
            (d,) = ops
            return ([f"res = (~r[{d}]) & 0xFF",
                     f"r[{d}] = res"],
                    [f"sr = (sr & ~{_SHIFT}) | {C} | lf[res]"],
                    1, True, {Z: "not res", N: "res & 0x80"})
        if m == "NEG":
            (d,) = ops
            return ([f"a = r[{d}]",
                     f"r[{d}] = (-a) & 0xFF"],
                    [f"sr = (sr & ~{_ARITH}) | negf[a]"],
                    1, True, {Z: "not a", C: "a"})
        if m == "SWAP":
            (d,) = ops
            return ([f"a = r[{d}]",
                     f"r[{d}] = ((a << 4) | (a >> 4)) & 0xFF"],
                    [], 1, False, {})
        if m in ("INC", "DEC"):
            (d,) = ops
            delta = "+ 1" if m == "INC" else "- 1"
            table = "incf" if m == "INC" else "decf"
            return ([f"res = (r[{d}] {delta}) & 0xFF",
                     f"r[{d}] = res"],
                    [f"sr = (sr & ~{_LOGIC}) | {table}[res]"],
                    1, True, {Z: "not res", N: "res & 0x80"})
        if m == "LSR":
            (d,) = ops
            return ([f"a = r[{d}]",
                     f"r[{d}] = a >> 1"],
                    [f"sr = (sr & ~{_SHIFT}) | lsrf[a]"],
                    1, True, {C: "a & 1", Z: "a < 2"})
        if m == "ASR":
            (d,) = ops
            return ([f"a = r[{d}]",
                     f"r[{d}] = (a >> 1) | (a & 0x80)"],
                    [f"sr = (sr & ~{_SHIFT}) | asrf[a]"],
                    1, True, {C: "a & 1", Z: "a < 2"})
        if m == "ROR":
            (d,) = ops
            return ([f"a = r[{d}]; cin = sr & 1",
                     f"r[{d}] = (a >> 1) | (cin << 7)"],
                    [f"sr = (sr & ~{_SHIFT}) | "
                     f"(rorf1 if cin else rorf0)[a]"],
                    1, True, {C: "a & 1"})
        if m in ("LDS", "STS"):
            d, k = ops
            # Static SRAM only: I/O, SP and SREG addresses keep their
            # hook/virtualization semantics by terminating the block.
            if ioports.RAM_START <= k < self.mem.size:
                line = f"mem[{k}] = r[{d}]" if m == "STS" \
                    else f"r[{d}] = mem[{k}]"
                return ([line], [], 2, False, {})
            return None
        if m == "LPM":
            d, mode = ops
            lines = ["z = r[30] | (r[31] << 8)",
                     f"r[{d}] = flash.byte(z)"]
            if mode == "Z+":
                lines += ["z = (z + 1) & 0xFFFF",
                          "r[30] = z & 0xFF",
                          "r[31] = z >> 8"]
            return (lines, [], 3, False, {})
        if m in ("BSET", "BCLR"):
            (s,) = ops
            if s == 7:  # SEI/CLI: interrupt delivery is boundary-checked
                return None
            mask = 1 << s
            line = f"sr |= {mask}" if m == "BSET" else f"sr &= ~{mask}"
            return ([], [line], 1, True, {})
        if m == "BLD":
            d, b = ops
            mask = 1 << b
            return ([f"if sr & {T}:",
                     f"    r[{d}] |= {mask}",
                     "else:",
                     f"    r[{d}] &= ~{mask}"],
                    [], 1, True, {})
        if m == "BST":
            d, b = ops
            mask = 1 << b
            return ([],
                    [f"if r[{d}] & {mask}:",
                     f"    sr |= {T}",
                     "else:",
                     f"    sr &= ~{T}"],
                    1, True, {})
        if m in ("NOP", "WDR"):
            return ([], [], 1, False, {})
        return None

    def _self_loop_body(self, ins: Instruction, members: List[str],
                        cost: int, count: int, uses_sreg: bool,
                        start: int) -> Optional[List[str]]:
        """Complete closure body for a block that branches back to its
        own start, or None if *ins* is not such a backward branch.

        The closure iterates internally, so tight spin loops pay the
        dispatch cost once.  Every observable boundary check of
        :meth:`_run_fused` is replicated per iteration: the exit guard
        tests the device alarm and applies the same exact-stop
        conditions against the run limits (published by ``run()`` as
        ``_run_mi``/``_run_mc``); a pending ``until()`` predicate forces
        an exit after one iteration so the run loop evaluates it.
        Nothing else can change mid-block — devices, traps and
        interrupts only get control between dispatches — so ``cycles``,
        ``instret`` and SREG can live in locals until exit.
        """
        m = ins.mnemonic
        if m in ("BRBS", "BRBC"):
            s, k = ins.operands
            if ins.next_address + k != start:
                return None
            mask = 1 << s
            flags = "sr" if uses_sreg else "cpu.sreg"
            taken = f"{flags} & {mask}" if m == "BRBS" \
                else f"not ({flags} & {mask})"
            taken_cycles, fall_cycles = cost + 2, cost + 1
        elif m == "RJMP" and ins.next_address + ins.operands[0] == start:
            taken = None
            taken_cycles = cost + 2
        else:
            return None
        body = []
        if uses_sreg:
            body.append("sr = cpu.sreg")
        body += ["cy = cpu.cycles",
                 "n = cpu.instret",
                 # No event can be scheduled mid-block (members touch
                 # neither I/O nor SP), so next_due is loop-invariant;
                 # -1 forces an exit after one iteration when until()
                 # must be evaluated.
                 "da = -1.0 if cpu._run_until is not None "
                 "else cpu.events.next_due",
                 "mi = cpu._run_mi",
                 "mc = cpu._run_mc",
                 "while True:"]
        inner = list(members)
        guard = [f"cy += {taken_cycles}",
                 f"n += {count + 1}",
                 f"if cy >= da or n + {count + 1} > mi "
                 f"or cy + {cost} >= mc:",
                 f"    cpu.pc = {start}",
                 "    break"]
        if taken is None:
            inner += guard
        else:
            inner += ([f"if {taken}:"]
                      + ["    " + line for line in guard]
                      + ["else:",
                         f"    cpu.pc = {ins.next_address}",
                         f"    cy += {fall_cycles}",
                         f"    n += {count + 1}",
                         "    break"])
        body += ["    " + line for line in inner]
        if uses_sreg:
            body.append("cpu.sreg = sr")
        body += ["cpu.cycles = cy", "cpu.instret = n"]
        return body

    def _inline_term_src(self, ins: Instruction, cost: int, count: int,
                         uses_sreg: bool) -> Optional[List[str]]:
        """Inline source for hot block terminators (branches, RJMP).

        Folds the members' cycle total into each arm so the epilogue is
        a single pc/cycles/instret update.  When the members kept SREG
        in the local ``sr``, the branch tests that local directly.
        """
        m = ins.mnemonic
        if m in ("BRBS", "BRBC"):
            s, k = ins.operands
            mask = 1 << s
            target = ins.next_address + k
            flags = "sr" if uses_sreg else "cpu.sreg"
            test = f"{flags} & {mask}" if m == "BRBS" \
                else f"not ({flags} & {mask})"
            return [f"if {test}:",
                    f"    cpu.pc = {target}",
                    f"    cpu.cycles += {cost + 2}",
                    "else:",
                    f"    cpu.pc = {ins.next_address}",
                    f"    cpu.cycles += {cost + 1}",
                    f"cpu.instret += {count + 1}"]
        if m == "RJMP":
            (k,) = ins.operands
            target = ins.next_address + k
            if self.in_trap_region(target):
                return None  # cannot happen for RJMP sites, but be safe
            return [f"cpu.pc = {target}",
                    f"cpu.cycles += {cost + 2}",
                    f"cpu.instret += {count + 1}"]
        return None

    def _build(self, ins: Instruction) -> Callable[[], None]:
        """Compile *ins* into an executable closure."""
        cpu = self
        r = self.r
        m = ins.mnemonic
        ops = ins.operands
        nxt = ins.next_address

        # --- two-register ALU ---
        if m in ("ADD", "ADC"):
            d, rr = ops
            with_carry = m == "ADC"
            def run():
                a, b = r[d], r[rr]
                cin = cpu.sreg & C if with_carry else 0
                res = (a + b + cin) & 0xFF
                r[d] = res
                cpu.sreg = (cpu.sreg & ~_ARITH) | _flags_add(a, b, cin, res)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("SUB", "SBC", "CP", "CPC"):
            d, rr = ops
            with_carry = m in ("SBC", "CPC")
            writeback = m in ("SUB", "SBC")
            keep_z = m in ("SBC", "CPC")
            def run():
                a, b = r[d], r[rr]
                cin = cpu.sreg & C if with_carry else 0
                res = (a - b - cin) & 0xFF
                if writeback:
                    r[d] = res
                f = _flags_sub(a, b, cin, res)
                if keep_z:  # Z only survives if it was already set
                    f = (f & ~Z) | (f & Z & cpu.sreg)
                cpu.sreg = (cpu.sreg & ~_ARITH) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("AND", "OR", "EOR"):
            d, rr = ops
            op = {"AND": lambda a, b: a & b, "OR": lambda a, b: a | b,
                  "EOR": lambda a, b: a ^ b}[m]
            def run():
                res = op(r[d], r[rr])
                r[d] = res
                cpu.sreg = (cpu.sreg & ~_LOGIC) | _flags_logic(res)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "MOV":
            d, rr = ops
            def run():
                r[d] = r[rr]
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "MOVW":
            d, rr = ops
            def run():
                r[d] = r[rr]
                r[d + 1] = r[rr + 1]
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "MUL":
            d, rr = ops
            def run():
                prod = r[d] * r[rr]
                r[0] = prod & 0xFF
                r[1] = (prod >> 8) & 0xFF
                f = 0
                if prod & 0x8000:
                    f |= C
                if prod == 0:
                    f |= Z
                cpu.sreg = (cpu.sreg & ~(C | Z)) | f
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "CPSE":
            d, rr = ops
            def run():
                cpu.cycles += 1
                if r[d] == r[rr]:
                    extra, target = cpu._skip_cycles_and_target(nxt)
                    cpu.cycles += extra
                    cpu.pc = target
                else:
                    cpu.pc = nxt
            return run

        # --- single-register ALU ---
        if m in ("COM", "NEG", "SWAP", "INC", "ASR", "LSR", "ROR", "DEC"):
            (d,) = ops
            return self._build_rd(m, d, nxt)

        # --- register-immediate ALU ---
        if m in ("SUBI", "SBCI", "CPI"):
            d, k = ops
            with_carry = m == "SBCI"
            writeback = m != "CPI"
            def run():
                a = r[d]
                cin = cpu.sreg & C if with_carry else 0
                res = (a - k - cin) & 0xFF
                if writeback:
                    r[d] = res
                f = _flags_sub(a, k, cin, res)
                if with_carry:
                    f = (f & ~Z) | (f & Z & cpu.sreg)
                cpu.sreg = (cpu.sreg & ~_ARITH) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("ANDI", "ORI"):
            d, k = ops
            is_and = m == "ANDI"
            def run():
                res = (r[d] & k) if is_and else (r[d] | k)
                r[d] = res
                cpu.sreg = (cpu.sreg & ~_LOGIC) | _flags_logic(res)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "LDI":
            d, k = ops
            def run():
                r[d] = k
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("ADIW", "SBIW"):
            d, k = ops
            is_add = m == "ADIW"
            def run():
                value = r[d] | (r[d + 1] << 8)
                res = (value + k) & 0xFFFF if is_add else (value - k) & 0xFFFF
                r[d] = res & 0xFF
                r[d + 1] = res >> 8
                f = 0
                res15 = res >> 15
                val15 = value >> 15
                if is_add:
                    if (~val15 & res15) & 1:
                        f |= V
                    if (val15 & ~res15) & 1:
                        f |= C
                else:
                    if (val15 & ~res15) & 1:
                        f |= V
                    if (res15 & ~val15) & 1:
                        f |= C
                if res == 0:
                    f |= Z
                if res & 0x8000:
                    f |= N
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                cpu.sreg = (cpu.sreg & ~(C | Z | N | V | S)) | f
                cpu.pc = nxt
                cpu.cycles += 2
            return run

        # --- data memory ---
        if m in ("LD", "ST"):
            d, mode = ops
            return self._build_ldst_ptr(m == "ST", d, mode, nxt)
        if m in ("LDD", "STD"):
            d, ptr, q = ops
            base = 28 if ptr == "Y" else 30
            is_store = m == "STD"
            def run():
                address = (r[base] | (r[base + 1] << 8)) + q
                if is_store:
                    cpu.data_write(address, r[d])
                else:
                    r[d] = cpu.data_read(address)
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m in ("LDS", "STS"):
            d, k = ops
            is_store = m == "STS"
            def run():
                if is_store:
                    cpu.data_write(k, r[d])
                else:
                    r[d] = cpu.data_read(k)
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "PUSH":
            (d,) = ops
            def run():
                cpu.push_byte(r[d])
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "POP":
            (d,) = ops
            def run():
                r[d] = cpu.pop_byte()
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "LPM":
            d, mode = ops
            post_inc = mode == "Z+"
            def run():
                z = r[30] | (r[31] << 8)
                r[d] = cpu.flash.byte(z)
                if post_inc:
                    z = (z + 1) & 0xFFFF
                    r[30] = z & 0xFF
                    r[31] = z >> 8
                cpu.pc = nxt
                cpu.cycles += 3
            return run

        # --- I/O ---
        if m == "IN":
            d, a = ops
            address = ioports.io_to_data(a)
            def run():
                r[d] = cpu.data_read(address)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "OUT":
            a, rr = ops
            address = ioports.io_to_data(a)
            def run():
                cpu.data_write(address, r[rr])
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("SBI", "CBI"):
            a, b = ops
            address = ioports.io_to_data(a)
            mask = 1 << b
            is_set = m == "SBI"
            def run():
                value = cpu.data_read(address)
                value = value | mask if is_set else value & ~mask
                cpu.data_write(address, value)
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m in ("SBIC", "SBIS"):
            a, b = ops
            address = ioports.io_to_data(a)
            mask = 1 << b
            skip_if_set = m == "SBIS"
            def run():
                cpu.cycles += 1
                bit = bool(cpu.data_read(address) & mask)
                if bit == skip_if_set:
                    extra, target = cpu._skip_cycles_and_target(nxt)
                    cpu.cycles += extra
                    cpu.pc = target
                else:
                    cpu.pc = nxt
            return run

        # --- control flow ---
        if m == "RJMP":
            (k,) = ops
            target = nxt + k
            def run():
                cpu.pc = target
                cpu.cycles += 2
            return run
        if m == "RCALL":
            (k,) = ops
            target = nxt + k
            def run():
                cpu.push_word(nxt)
                cpu.pc = target
                cpu.cycles += 3
            return run
        if m == "JMP":
            (k,) = ops
            if self.in_trap_region(k):
                return self._build_trap(ins.address, k, is_call=False)
            def run():
                cpu.pc = k
                cpu.cycles += 3
            return run
        if m == "CALL":
            (k,) = ops
            if self.in_trap_region(k):
                return self._build_trap(ins.address, k, is_call=True)
            def run():
                cpu.push_word(nxt)
                cpu.pc = k
                cpu.cycles += 4
            return run
        if m == "IJMP":
            def run():
                cpu.pc = r[30] | (r[31] << 8)
                cpu.cycles += 2
            return run
        if m == "ICALL":
            def run():
                cpu.push_word(nxt)
                cpu.pc = r[30] | (r[31] << 8)
                cpu.cycles += 3
            return run
        if m in ("RET", "RETI"):
            enable_i = m == "RETI"
            def run():
                cpu.pc = cpu.pop_word()
                if enable_i:
                    cpu.sreg |= I
                cpu.cycles += 4
            return run
        if m in ("BRBS", "BRBC"):
            s, k = ops
            mask = 1 << s
            branch_if_set = m == "BRBS"
            target = nxt + k
            def run():
                if bool(cpu.sreg & mask) == branch_if_set:
                    cpu.pc = target
                    cpu.cycles += 2
                else:
                    cpu.pc = nxt
                    cpu.cycles += 1
            return run
        if m in ("SBRC", "SBRS"):
            rr, b = ops
            mask = 1 << b
            skip_if_set = m == "SBRS"
            def run():
                cpu.cycles += 1
                if bool(r[rr] & mask) == skip_if_set:
                    extra, target = cpu._skip_cycles_and_target(nxt)
                    cpu.cycles += extra
                    cpu.pc = target
                else:
                    cpu.pc = nxt
            return run

        # --- flags and bits ---
        if m in ("BSET", "BCLR"):
            (s,) = ops
            mask = 1 << s
            is_set = m == "BSET"
            def run():
                if is_set:
                    cpu.sreg |= mask
                else:
                    cpu.sreg &= ~mask
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "BLD":
            d, b = ops
            mask = 1 << b
            def run():
                if cpu.sreg & T:
                    r[d] |= mask
                else:
                    r[d] &= ~mask
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "BST":
            d, b = ops
            mask = 1 << b
            def run():
                if r[d] & mask:
                    cpu.sreg |= T
                else:
                    cpu.sreg &= ~T
                cpu.pc = nxt
                cpu.cycles += 1
            return run

        # --- CPU control ---
        if m == "NOP" or m == "WDR":
            def run():
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "SLEEP":
            def run():
                cpu.sleeping = True
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "BREAK":
            def run():
                cpu.halted = True
                cpu.pc = nxt
                cpu.cycles += 1
            return run

        raise InvalidInstruction(ins.address,
                                 self.flash.word(ins.address))

    def _build_rd(self, m: str, d: int, nxt: int) -> Callable[[], None]:
        cpu, r = self, self.r

        if m == "COM":
            def run():
                res = (~r[d]) & 0xFF
                r[d] = res
                f = C | _flags_logic(res)
                cpu.sreg = (cpu.sreg & ~_SHIFT) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "NEG":
            def run():
                a = r[d]
                res = (-a) & 0xFF
                r[d] = res
                f = 0
                if res != 0:
                    f |= C
                if res == 0:
                    f |= Z
                if res & 0x80:
                    f |= N
                if res == 0x80:
                    f |= V
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                if (res | a) & 0x08:
                    f |= H
                cpu.sreg = (cpu.sreg & ~_ARITH) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "SWAP":
            def run():
                a = r[d]
                r[d] = ((a << 4) | (a >> 4)) & 0xFF
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("INC", "DEC"):
            is_inc = m == "INC"
            def run():
                a = r[d]
                res = (a + 1) & 0xFF if is_inc else (a - 1) & 0xFF
                r[d] = res
                f = 0
                if res == 0:
                    f |= Z
                if res & 0x80:
                    f |= N
                if (is_inc and res == 0x80) or (not is_inc and res == 0x7F):
                    f |= V
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                cpu.sreg = (cpu.sreg & ~_LOGIC) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("LSR", "ROR", "ASR"):
            def run():
                a = r[d]
                carry_out = a & 1
                if m == "LSR":
                    res = a >> 1
                elif m == "ROR":
                    res = (a >> 1) | ((cpu.sreg & C) << 7)
                else:  # ASR
                    res = (a >> 1) | (a & 0x80)
                r[d] = res
                f = carry_out
                if res == 0:
                    f |= Z
                if res & 0x80:
                    f |= N
                # V = N xor C (post-shift)
                if bool(f & N) != bool(carry_out):
                    f |= V
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                cpu.sreg = (cpu.sreg & ~_SHIFT) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        raise AssertionError(f"unhandled RD op {m}")  # pragma: no cover

    def _build_ldst_ptr(self, is_store: bool, d: int, mode: str,
                        nxt: int) -> Callable[[], None]:
        cpu, r = self, self.r
        base = {"X": 26, "Y": 28, "Z": 30}[mode.strip("+-")]
        pre_dec = mode.startswith("-")
        post_inc = mode.endswith("+")

        def run():
            address = r[base] | (r[base + 1] << 8)
            if pre_dec:
                address = (address - 1) & 0xFFFF
            if is_store:
                cpu.data_write(address, r[d])
            else:
                r[d] = cpu.data_read(address)
            if post_inc:
                new = (address + 1) & 0xFFFF
                r[base] = new & 0xFF
                r[base + 1] = new >> 8
            elif pre_dec:
                r[base] = address & 0xFF
                r[base + 1] = address >> 8
            cpu.pc = nxt
            cpu.cycles += 2
        return run

    def _build_trap(self, site: int, target: int,
                    is_call: bool) -> Callable[[], None]:
        factory = self._trap_thunk_factory
        if factory is not None:
            thunk = factory(self, site, target, is_call)
            if thunk is not None:
                return thunk
        cpu = self

        def run():
            cpu._trap_handler(cpu, site, target, is_call)
        return run
