"""Cycle-counting AVR CPU simulator.

The interpreter pre-decodes flash words into Python closures the first
time each address executes (flash is immutable during execution, paper
assumption III-A), so the hot loop is a dictionary-free closure call.

Two integration points exist for the SenSmart kernel:

* a *trap region* of flash word addresses: a ``JMP``/``CALL`` whose target
  lies inside the region — or the PC landing there directly — invokes the
  registered trap handler instead of executing machine code.  SenSmart's
  trampolines live there;
* *devices* registered with the CPU are serviced between instructions and
  can raise interrupts or wake the CPU from sleep.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import InvalidInstruction, SimulationError
from . import ioports
from .encoding import EncodingError, decode
from .instruction import Instruction
from .memory import DataMemory, Flash

# SREG flag masks.
C, Z, N, V, S, H, T, I = (1 << b for b in range(8))
_ARITH = C | Z | N | V | S | H
_LOGIC = Z | N | V | S
_SHIFT = C | Z | N | V | S


def _flags_add(a: int, b: int, carry_in: int, res: int) -> int:
    """SREG bits (C,Z,N,V,S,H) for an 8-bit addition."""
    full = a + b + carry_in
    f = 0
    if full > 0xFF:
        f |= C
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N
    if (~(a ^ b) & (a ^ res)) & 0x80:
        f |= V
    if ((f >> 2) ^ (f >> 3)) & 1:  # S = N xor V
        f |= S
    if ((a & 0xF) + (b & 0xF) + carry_in) > 0xF:
        f |= H
    return f


def _flags_sub(a: int, b: int, carry_in: int, res: int) -> int:
    """SREG bits (C,Z,N,V,S,H) for an 8-bit subtraction ``a - b - cin``."""
    f = 0
    if b + carry_in > a:
        f |= C
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N
    if ((a ^ b) & (a ^ res)) & 0x80:
        f |= V
    if ((f >> 2) ^ (f >> 3)) & 1:
        f |= S
    if (b & 0xF) + carry_in > (a & 0xF):
        f |= H
    return f


def _flags_logic(res: int) -> int:
    """SREG bits for AND/OR/EOR: V cleared, S = N."""
    f = 0
    if res == 0:
        f |= Z
    if res & 0x80:
        f |= N | S
    return f


class AvrCpu:
    """The simulated ATmega128L core."""

    def __init__(self, flash: Flash, memory: Optional[DataMemory] = None,
                 clock_hz: int = 7_372_800):
        self.flash = flash
        self.mem = memory if memory is not None else DataMemory()
        self.clock_hz = clock_hz
        self.r = bytearray(32)
        self.pc = 0
        self.sp = ioports.RAM_END
        self.sreg = 0
        self.cycles = 0
        self.idle_cycles = 0  # cycles skipped while sleeping
        self.instret = 0
        self.sleeping = False
        self.halted = False
        self._exec: List[Optional[Callable[[], None]]] = \
            [None] * flash.size_words
        self._devices: List = []
        self._pending_irqs: List[int] = []
        self.device_alarm = float("inf")
        self._trap_ranges: List = []  # [(lo, hi)] word-address ranges
        self._trap_lo = -1  # envelope for the hot-path check
        self._trap_hi = -1
        self._trap_handler: Optional[Callable] = None
        self.profile: Optional[List[int]] = None  # per-PC hit counts

    # -- configuration --------------------------------------------------------

    def attach_device(self, device) -> None:
        """Register a device (timer/ADC/...) for inter-instruction service."""
        self._devices.append(device)
        device.attach(self)

    def set_trap_region(self, lo: int, hi: int, handler) -> None:
        """Route execution entering flash words [*lo*, *hi*) to *handler*.

        ``handler(cpu, site, target, is_call)`` receives the word address of
        the patched site (``-1`` if the PC landed in the region without a
        patched ``JMP/CALL``, e.g. through ``IJMP``), the trampoline word
        address, and whether the site used ``CALL`` semantics.
        """
        self._trap_ranges = [(lo, hi)]
        self._trap_handler = handler
        self._update_trap_envelope()
        # Invalidate decoded thunks: targets may now trap.
        self._exec = [None] * self.flash.size_words

    def add_trap_region(self, lo: int, hi: int) -> None:
        """Add another trapped range (dynamic task loading appends new
        trampoline regions after the original image)."""
        self._trap_ranges.append((lo, hi))
        self._update_trap_envelope()
        self._exec = [None] * self.flash.size_words

    def _update_trap_envelope(self) -> None:
        if self._trap_ranges:
            self._trap_lo = min(lo for lo, _ in self._trap_ranges)
            self._trap_hi = max(hi for _, hi in self._trap_ranges)
        else:
            self._trap_lo = self._trap_hi = -1

    def in_trap_region(self, address: int) -> bool:
        if not self._trap_lo <= address < self._trap_hi:
            return False
        return any(lo <= address < hi for lo, hi in self._trap_ranges)

    def invalidate_decode(self) -> None:
        """Drop decoded closures (call after re-burning flash)."""
        self._exec = [None] * self.flash.size_words

    def enable_profiling(self) -> None:
        """Count executions per PC (Avrora-style flat profile).

        Adds one array increment per instruction; enable only when the
        profile is wanted.
        """
        self.profile = [0] * self.flash.size_words
        self.invalidate_decode()

    def raise_interrupt(self, vector: int) -> None:
        self._pending_irqs.append(vector)
        self.sleeping = False

    def schedule_alarm(self, cycle: int) -> None:
        """Ask for device service at or after the given cycle count."""
        if cycle < self.device_alarm:
            self.device_alarm = cycle

    # -- data-space access ------------------------------------------------------

    def data_read(self, address: int) -> int:
        if address < 0x20:
            return self.r[address]
        if address == ioports.SPL:
            return self.sp & 0xFF
        if address == ioports.SPH:
            return (self.sp >> 8) & 0xFF
        if address == ioports.SREG:
            return self.sreg
        return self.mem.read(address)

    def data_write(self, address: int, value: int) -> None:
        value &= 0xFF
        if address < 0x20:
            self.r[address] = value
            return
        if address == ioports.SPL:
            self.sp = (self.sp & 0xFF00) | value
            return
        if address == ioports.SPH:
            self.sp = (value << 8) | (self.sp & 0x00FF)
            return
        if address == ioports.SREG:
            self.sreg = value
            return
        self.mem.write(address, value)

    def push_byte(self, value: int) -> None:
        self.data_write(self.sp, value)
        self.sp = (self.sp - 1) & 0xFFFF

    def pop_byte(self) -> int:
        self.sp = (self.sp + 1) & 0xFFFF
        return self.data_read(self.sp)

    def push_word(self, value: int) -> None:
        self.push_byte(value & 0xFF)
        self.push_byte((value >> 8) & 0xFF)

    def pop_word(self) -> int:
        high = self.pop_byte()
        return (high << 8) | self.pop_byte()

    # -- register-pair helpers ---------------------------------------------------

    def get_pair(self, lo_reg: int) -> int:
        return self.r[lo_reg] | (self.r[lo_reg + 1] << 8)

    def set_pair(self, lo_reg: int, value: int) -> None:
        self.r[lo_reg] = value & 0xFF
        self.r[lo_reg + 1] = (value >> 8) & 0xFF

    # -- execution -----------------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one instruction (or service one interrupt)."""
        if self._pending_irqs and (self.sreg & I):
            self._enter_interrupt(self._pending_irqs.pop(0))
            return
        pc = self.pc
        if self._trap_lo <= pc < self._trap_hi and \
                self.in_trap_region(pc):
            self._trap_handler(self, -1, pc, False)
            self.instret += 1
            return
        thunk = self._exec[pc]
        if thunk is None:
            thunk = self._decode_at(pc)
        thunk()
        self.instret += 1

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None,
            until: Optional[Callable[["AvrCpu"], bool]] = None) -> None:
        """Run until halted, a limit is reached, or *until(cpu)* is true."""
        while not self.halted:
            if self.sleeping:
                if not self._advance_to_next_event(max_cycles):
                    return
                continue
            self.step()
            if self.cycles >= self.device_alarm:
                self._service_devices()
            if max_cycles is not None and self.cycles >= max_cycles:
                return
            if max_instructions is not None and \
                    self.instret >= max_instructions:
                return
            if until is not None and until(self):
                return

    def _service_devices(self) -> None:
        self.device_alarm = float("inf")
        for device in self._devices:
            device.service(self)

    def _advance_to_next_event(self, max_cycles: Optional[int]) -> bool:
        """Fast-forward a sleeping CPU to the next device event.

        Returns False when there is nothing to wake up for (deadlock) or
        the cycle limit was consumed by the skip.
        """
        wake_cycles = [w for w in
                       (d.next_event_cycle(self) for d in self._devices)
                       if w is not None]
        if not wake_cycles:
            raise SimulationError(
                "CPU is sleeping with no device event to wake it")
        wake = max(min(wake_cycles), self.cycles + 1)
        if max_cycles is not None and wake >= max_cycles:
            self.idle_cycles += max_cycles - self.cycles
            self.cycles = max_cycles
            return False
        self.idle_cycles += wake - self.cycles
        self.cycles = wake
        self._service_devices()
        if self._pending_irqs:
            self.sleeping = False
        return True

    def _enter_interrupt(self, vector: int) -> None:
        self.push_word(self.pc)
        self.sreg &= ~I
        self.pc = vector
        self.cycles += 4
        self.sleeping = False

    # -- decoding into closures ---------------------------------------------------

    def _decode_at(self, pc: int) -> Callable[[], None]:
        word = self.flash.word(pc)
        next_word = self.flash.word(pc + 1) \
            if pc + 1 < self.flash.size_words else None
        try:
            instr = decode(word, next_word, pc)
        except EncodingError:
            raise InvalidInstruction(pc, word) from None
        thunk = self._build(instr)
        if self.profile is not None:
            inner = thunk
            profile = self.profile

            def thunk(address=pc, inner=inner, profile=profile):
                profile[address] += 1
                inner()
        self._exec[pc] = thunk
        return thunk

    def _skip_cycles_and_target(self, after: int) -> (int, int):
        """(extra cycles, new pc) when skipping the instruction at *after*."""
        size = self.flash.instruction_size(after)
        return size, after + size

    def _build(self, ins: Instruction) -> Callable[[], None]:
        """Compile *ins* into an executable closure."""
        cpu = self
        r = self.r
        m = ins.mnemonic
        ops = ins.operands
        nxt = ins.next_address

        # --- two-register ALU ---
        if m in ("ADD", "ADC"):
            d, rr = ops
            with_carry = m == "ADC"
            def run():
                a, b = r[d], r[rr]
                cin = cpu.sreg & C if with_carry else 0
                res = (a + b + cin) & 0xFF
                r[d] = res
                cpu.sreg = (cpu.sreg & ~_ARITH) | _flags_add(a, b, cin, res)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("SUB", "SBC", "CP", "CPC"):
            d, rr = ops
            with_carry = m in ("SBC", "CPC")
            writeback = m in ("SUB", "SBC")
            keep_z = m in ("SBC", "CPC")
            def run():
                a, b = r[d], r[rr]
                cin = cpu.sreg & C if with_carry else 0
                res = (a - b - cin) & 0xFF
                if writeback:
                    r[d] = res
                f = _flags_sub(a, b, cin, res)
                if keep_z:  # Z only survives if it was already set
                    f = (f & ~Z) | (f & Z & cpu.sreg)
                cpu.sreg = (cpu.sreg & ~_ARITH) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("AND", "OR", "EOR"):
            d, rr = ops
            op = {"AND": lambda a, b: a & b, "OR": lambda a, b: a | b,
                  "EOR": lambda a, b: a ^ b}[m]
            def run():
                res = op(r[d], r[rr])
                r[d] = res
                cpu.sreg = (cpu.sreg & ~_LOGIC) | _flags_logic(res)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "MOV":
            d, rr = ops
            def run():
                r[d] = r[rr]
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "MOVW":
            d, rr = ops
            def run():
                r[d] = r[rr]
                r[d + 1] = r[rr + 1]
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "MUL":
            d, rr = ops
            def run():
                prod = r[d] * r[rr]
                r[0] = prod & 0xFF
                r[1] = (prod >> 8) & 0xFF
                f = 0
                if prod & 0x8000:
                    f |= C
                if prod == 0:
                    f |= Z
                cpu.sreg = (cpu.sreg & ~(C | Z)) | f
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "CPSE":
            d, rr = ops
            def run():
                cpu.cycles += 1
                if r[d] == r[rr]:
                    extra, target = cpu._skip_cycles_and_target(nxt)
                    cpu.cycles += extra
                    cpu.pc = target
                else:
                    cpu.pc = nxt
            return run

        # --- single-register ALU ---
        if m in ("COM", "NEG", "SWAP", "INC", "ASR", "LSR", "ROR", "DEC"):
            (d,) = ops
            return self._build_rd(m, d, nxt)

        # --- register-immediate ALU ---
        if m in ("SUBI", "SBCI", "CPI"):
            d, k = ops
            with_carry = m == "SBCI"
            writeback = m != "CPI"
            def run():
                a = r[d]
                cin = cpu.sreg & C if with_carry else 0
                res = (a - k - cin) & 0xFF
                if writeback:
                    r[d] = res
                f = _flags_sub(a, k, cin, res)
                if with_carry:
                    f = (f & ~Z) | (f & Z & cpu.sreg)
                cpu.sreg = (cpu.sreg & ~_ARITH) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("ANDI", "ORI"):
            d, k = ops
            is_and = m == "ANDI"
            def run():
                res = (r[d] & k) if is_and else (r[d] | k)
                r[d] = res
                cpu.sreg = (cpu.sreg & ~_LOGIC) | _flags_logic(res)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "LDI":
            d, k = ops
            def run():
                r[d] = k
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("ADIW", "SBIW"):
            d, k = ops
            is_add = m == "ADIW"
            def run():
                value = r[d] | (r[d + 1] << 8)
                res = (value + k) & 0xFFFF if is_add else (value - k) & 0xFFFF
                r[d] = res & 0xFF
                r[d + 1] = res >> 8
                f = 0
                res15 = res >> 15
                val15 = value >> 15
                if is_add:
                    if (~val15 & res15) & 1:
                        f |= V
                    if (val15 & ~res15) & 1:
                        f |= C
                else:
                    if (val15 & ~res15) & 1:
                        f |= V
                    if (res15 & ~val15) & 1:
                        f |= C
                if res == 0:
                    f |= Z
                if res & 0x8000:
                    f |= N
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                cpu.sreg = (cpu.sreg & ~(C | Z | N | V | S)) | f
                cpu.pc = nxt
                cpu.cycles += 2
            return run

        # --- data memory ---
        if m in ("LD", "ST"):
            d, mode = ops
            return self._build_ldst_ptr(m == "ST", d, mode, nxt)
        if m in ("LDD", "STD"):
            d, ptr, q = ops
            base = 28 if ptr == "Y" else 30
            is_store = m == "STD"
            def run():
                address = (r[base] | (r[base + 1] << 8)) + q
                if is_store:
                    cpu.data_write(address, r[d])
                else:
                    r[d] = cpu.data_read(address)
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m in ("LDS", "STS"):
            d, k = ops
            is_store = m == "STS"
            def run():
                if is_store:
                    cpu.data_write(k, r[d])
                else:
                    r[d] = cpu.data_read(k)
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "PUSH":
            (d,) = ops
            def run():
                cpu.push_byte(r[d])
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "POP":
            (d,) = ops
            def run():
                r[d] = cpu.pop_byte()
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m == "LPM":
            d, mode = ops
            post_inc = mode == "Z+"
            def run():
                z = r[30] | (r[31] << 8)
                r[d] = cpu.flash.byte(z)
                if post_inc:
                    z = (z + 1) & 0xFFFF
                    r[30] = z & 0xFF
                    r[31] = z >> 8
                cpu.pc = nxt
                cpu.cycles += 3
            return run

        # --- I/O ---
        if m == "IN":
            d, a = ops
            address = ioports.io_to_data(a)
            def run():
                r[d] = cpu.data_read(address)
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "OUT":
            a, rr = ops
            address = ioports.io_to_data(a)
            def run():
                cpu.data_write(address, r[rr])
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("SBI", "CBI"):
            a, b = ops
            address = ioports.io_to_data(a)
            mask = 1 << b
            is_set = m == "SBI"
            def run():
                value = cpu.data_read(address)
                value = value | mask if is_set else value & ~mask
                cpu.data_write(address, value)
                cpu.pc = nxt
                cpu.cycles += 2
            return run
        if m in ("SBIC", "SBIS"):
            a, b = ops
            address = ioports.io_to_data(a)
            mask = 1 << b
            skip_if_set = m == "SBIS"
            def run():
                cpu.cycles += 1
                bit = bool(cpu.data_read(address) & mask)
                if bit == skip_if_set:
                    extra, target = cpu._skip_cycles_and_target(nxt)
                    cpu.cycles += extra
                    cpu.pc = target
                else:
                    cpu.pc = nxt
            return run

        # --- control flow ---
        if m == "RJMP":
            (k,) = ops
            target = nxt + k
            def run():
                cpu.pc = target
                cpu.cycles += 2
            return run
        if m == "RCALL":
            (k,) = ops
            target = nxt + k
            def run():
                cpu.push_word(nxt)
                cpu.pc = target
                cpu.cycles += 3
            return run
        if m == "JMP":
            (k,) = ops
            if self.in_trap_region(k):
                return self._build_trap(ins.address, k, is_call=False)
            def run():
                cpu.pc = k
                cpu.cycles += 3
            return run
        if m == "CALL":
            (k,) = ops
            if self.in_trap_region(k):
                return self._build_trap(ins.address, k, is_call=True)
            def run():
                cpu.push_word(nxt)
                cpu.pc = k
                cpu.cycles += 4
            return run
        if m == "IJMP":
            def run():
                cpu.pc = r[30] | (r[31] << 8)
                cpu.cycles += 2
            return run
        if m == "ICALL":
            def run():
                cpu.push_word(nxt)
                cpu.pc = r[30] | (r[31] << 8)
                cpu.cycles += 3
            return run
        if m in ("RET", "RETI"):
            enable_i = m == "RETI"
            def run():
                cpu.pc = cpu.pop_word()
                if enable_i:
                    cpu.sreg |= I
                cpu.cycles += 4
            return run
        if m in ("BRBS", "BRBC"):
            s, k = ops
            mask = 1 << s
            branch_if_set = m == "BRBS"
            target = nxt + k
            def run():
                if bool(cpu.sreg & mask) == branch_if_set:
                    cpu.pc = target
                    cpu.cycles += 2
                else:
                    cpu.pc = nxt
                    cpu.cycles += 1
            return run
        if m in ("SBRC", "SBRS"):
            rr, b = ops
            mask = 1 << b
            skip_if_set = m == "SBRS"
            def run():
                cpu.cycles += 1
                if bool(r[rr] & mask) == skip_if_set:
                    extra, target = cpu._skip_cycles_and_target(nxt)
                    cpu.cycles += extra
                    cpu.pc = target
                else:
                    cpu.pc = nxt
            return run

        # --- flags and bits ---
        if m in ("BSET", "BCLR"):
            (s,) = ops
            mask = 1 << s
            is_set = m == "BSET"
            def run():
                if is_set:
                    cpu.sreg |= mask
                else:
                    cpu.sreg &= ~mask
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "BLD":
            d, b = ops
            mask = 1 << b
            def run():
                if cpu.sreg & T:
                    r[d] |= mask
                else:
                    r[d] &= ~mask
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "BST":
            d, b = ops
            mask = 1 << b
            def run():
                if r[d] & mask:
                    cpu.sreg |= T
                else:
                    cpu.sreg &= ~T
                cpu.pc = nxt
                cpu.cycles += 1
            return run

        # --- CPU control ---
        if m == "NOP" or m == "WDR":
            def run():
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "SLEEP":
            def run():
                cpu.sleeping = True
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "BREAK":
            def run():
                cpu.halted = True
                cpu.pc = nxt
                cpu.cycles += 1
            return run

        raise InvalidInstruction(ins.address,
                                 self.flash.word(ins.address))

    def _build_rd(self, m: str, d: int, nxt: int) -> Callable[[], None]:
        cpu, r = self, self.r

        if m == "COM":
            def run():
                res = (~r[d]) & 0xFF
                r[d] = res
                f = C | _flags_logic(res)
                cpu.sreg = (cpu.sreg & ~_SHIFT) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "NEG":
            def run():
                a = r[d]
                res = (-a) & 0xFF
                r[d] = res
                f = 0
                if res != 0:
                    f |= C
                if res == 0:
                    f |= Z
                if res & 0x80:
                    f |= N
                if res == 0x80:
                    f |= V
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                if (res | a) & 0x08:
                    f |= H
                cpu.sreg = (cpu.sreg & ~_ARITH) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m == "SWAP":
            def run():
                a = r[d]
                r[d] = ((a << 4) | (a >> 4)) & 0xFF
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("INC", "DEC"):
            is_inc = m == "INC"
            def run():
                a = r[d]
                res = (a + 1) & 0xFF if is_inc else (a - 1) & 0xFF
                r[d] = res
                f = 0
                if res == 0:
                    f |= Z
                if res & 0x80:
                    f |= N
                if (is_inc and res == 0x80) or (not is_inc and res == 0x7F):
                    f |= V
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                cpu.sreg = (cpu.sreg & ~_LOGIC) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        if m in ("LSR", "ROR", "ASR"):
            def run():
                a = r[d]
                carry_out = a & 1
                if m == "LSR":
                    res = a >> 1
                elif m == "ROR":
                    res = (a >> 1) | ((cpu.sreg & C) << 7)
                else:  # ASR
                    res = (a >> 1) | (a & 0x80)
                r[d] = res
                f = carry_out
                if res == 0:
                    f |= Z
                if res & 0x80:
                    f |= N
                # V = N xor C (post-shift)
                if bool(f & N) != bool(carry_out):
                    f |= V
                if ((f >> 2) ^ (f >> 3)) & 1:
                    f |= S
                cpu.sreg = (cpu.sreg & ~_SHIFT) | f
                cpu.pc = nxt
                cpu.cycles += 1
            return run
        raise AssertionError(f"unhandled RD op {m}")  # pragma: no cover

    def _build_ldst_ptr(self, is_store: bool, d: int, mode: str,
                        nxt: int) -> Callable[[], None]:
        cpu, r = self, self.r
        base = {"X": 26, "Y": 28, "Z": 30}[mode.strip("+-")]
        pre_dec = mode.startswith("-")
        post_inc = mode.endswith("+")

        def run():
            address = r[base] | (r[base + 1] << 8)
            if pre_dec:
                address = (address - 1) & 0xFFFF
            if is_store:
                cpu.data_write(address, r[d])
            else:
                r[d] = cpu.data_read(address)
            if post_inc:
                new = (address + 1) & 0xFFFF
                r[base] = new & 0xFF
                r[base + 1] = new >> 8
            elif pre_dec:
                r[base] = address & 0xFF
                r[base + 1] = address >> 8
            cpu.pc = nxt
            cpu.cycles += 2
        return run

    def _build_trap(self, site: int, target: int,
                    is_call: bool) -> Callable[[], None]:
        cpu = self

        def run():
            cpu._trap_handler(cpu, site, target, is_call)
        return run
